//! The determinism & simulator-invariant rule set (D1–D8).
//!
//! Every rule is a token-stream heuristic, not a type check — `leaky-lint`
//! has no inference, so each rule is tuned to the workspace's idioms and
//! errs toward *documented* false negatives over noisy false positives.
//! What each rule protects:
//!
//! * **D1 `wallclock`** — `Instant`/`SystemTime` outside the bench/example
//!   allowlist. A wall-clock read inside the simulators or the attack
//!   pipeline would couple traces to host scheduling.
//! * **D2 `hash-iteration`** — iteration over `HashMap`/`HashSet` in the
//!   simulator/pipeline crates. Hash iteration order is seeded per-process;
//!   anything derived from it breaks bitwise reproducibility. Waivable with
//!   `// lint: sorted` when a sort or BTree collection provably follows.
//! * **D3 `parallelism`** — `thread::spawn`/`scope`/`Builder`, `.spawn(`,
//!   `rayon` outside `ml::par` / `ml::par::pool`. All concurrency must
//!   flow through the persistent deterministic pool so results stay
//!   thread-count invariant.
//! * **D4 `unseeded-rng`** — `thread_rng`/`from_entropy`/`OsRng`: entropy
//!   that is not derived from a recorded seed.
//! * **D5 `unsafe-safety`** — `unsafe` is only legal in allowlisted files
//!   and must carry a `// SAFETY:` comment within the three lines above.
//! * **D6 `debug-key`** — `{:?}` format strings in cache-key modules.
//!   `Debug` output is not a stability contract; keys derived from it
//!   rot silently across compiler/library versions.
//! * **D7 `float-sum`** — bare f32/f64 `.sum()` in a statement that also
//!   touches `par_map` results, outside the blessed reduction helpers.
//!   Float addition is non-associative; only a serial fold in a fixed
//!   order is reproducible.
//! * **D8 `arch-confinement`** — `core::arch`/`std::arch`,
//!   `is_x86_feature_detected!` and `_mm*`/`__m*` intrinsic identifiers
//!   outside the allowlisted SIMD module. Scattered intrinsics make the
//!   bitwise f32 contract unauditable; every explicit-lane kernel must
//!   live behind `ml::simd`'s dispatch-and-fallback pairing so the
//!   SIMD-off path stays provably equivalent.
//!
//! Any finding can be suppressed line-locally with `// lint: allow(Dn)`
//! (same line or the line above); D2 additionally honours the semantic
//! waiver `// lint: sorted`.

use std::collections::BTreeSet;

use crate::config::{Config, RuleConfig};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// One rule's identity and implementation.
pub struct RuleDef {
    pub id: &'static str,
    pub name: &'static str,
    /// What the rule protects and how to fix or waive a finding
    /// (`--explain Dn`).
    pub explain: &'static str,
    check: fn(&FileCtx<'_>, &mut Vec<Finding>),
}

/// All token rules, in report order. The semantic rules (A1–A4) live in
/// [`crate::arules::SEM_RULES`]; `--explain` covers both tables.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        id: "D1",
        name: "wallclock",
        explain: "Wall-clock types (`Instant`, `SystemTime`) outside the bench/example \
                  allowlist couple traces to host scheduling. Simulated time must come \
                  from the engine. Fix: move timing into crates/bench or an example; \
                  waive a single line with `// lint: allow(D1)` plus a justification.",
        check: d1_wallclock,
    },
    RuleDef {
        id: "D2",
        name: "hash-iteration",
        explain: "Iterating a HashMap/HashSet observes per-process hash order; anything \
                  derived from it breaks bitwise reproducibility. Fix: use a BTree \
                  collection or sort first; waive with `// lint: sorted` when a sort \
                  provably follows. Rule A3 deepens this check for float accumulations.",
        check: d2_hash_iteration,
    },
    RuleDef {
        id: "D3",
        name: "parallelism",
        explain: "`thread::spawn`/`scope`/`Builder`, `.spawn(` and `rayon` outside \
                  `ml::par` bypass the deterministic worker pool, so results stop being \
                  thread-count invariant. Fix: route the fan-out through \
                  `ml::par::par_map`.",
        check: d3_parallelism,
    },
    RuleDef {
        id: "D4",
        name: "unseeded-rng",
        explain: "`thread_rng`/`from_entropy`/`OsRng` draw entropy a trace cannot \
                  replay. Fix: derive every RNG from a recorded seed \
                  (`StdRng::seed_from_u64`).",
        check: d4_unseeded_rng,
    },
    RuleDef {
        id: "D5",
        name: "unsafe-safety",
        explain: "`unsafe` is only legal in allowlisted files (lint.toml \
                  `rules.D5.allow`) and must carry a `// SAFETY:` comment within the \
                  three lines above. The allowlist is audited by `--check-config`: an \
                  entry whose files contain no `unsafe` at all is a stale-config error.",
        check: d5_unsafe_safety,
    },
    RuleDef {
        id: "D6",
        name: "debug-key",
        explain: "`{:?}` format strings in cache-key modules derive key material from \
                  `Debug` output, which is not stable across compiler/library versions. \
                  Fix: hash canonical fields instead.",
        check: d6_debug_key,
    },
    RuleDef {
        id: "D7",
        name: "float-sum",
        explain: "Bare f32/f64 `.sum()` in a statement touching `par_map` results: \
                  float addition is non-associative, so only a serial fold in a fixed \
                  order is reproducible. Fix: fold serially in input order via a blessed \
                  reduction helper. Rule A3 generalizes this to `+=` folds whose \
                  iteration order is not provably fixed.",
        check: d7_float_sum,
    },
    RuleDef {
        id: "D8",
        name: "arch-confinement",
        explain: "`core::arch`/`std::arch`, `is_x86_feature_detected!` and `_mm*`/`__m*` \
                  intrinsics outside `ml::simd` make the bitwise f32 contract \
                  unauditable. Fix: wrap the kernel in `ml::simd` with a dispatch check \
                  and scalar fallback.",
        check: d8_arch_confinement,
    },
];

struct Finding {
    line: u32,
    message: String,
}

struct FileCtx<'a> {
    path: &'a str,
    lexed: &'a Lexed,
    rule: &'a RuleConfig,
}

impl FileCtx<'_> {
    fn toks(&self) -> &[Tok] {
        &self.lexed.tokens
    }

    fn ident(&self, i: usize) -> Option<&str> {
        let t = self.toks().get(i)?;
        (t.kind == TokKind::Ident).then_some(t.text.as_str())
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks()
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }

    /// True if tokens at `i..` spell `base :: member`.
    fn is_path_call(&self, i: usize, base: &str, member: &str) -> bool {
        self.ident(i) == Some(base)
            && self.is_punct(i + 1, ':')
            && self.is_punct(i + 2, ':')
            && self.ident(i + 3) == Some(member)
    }

    /// True if tokens at `i..` spell `. member`.
    fn is_method(&self, i: usize, member: &str) -> bool {
        self.is_punct(i, '.') && self.ident(i + 1) == Some(member)
    }
}

/// The line-local waiver table, extracted from comments once per file so
/// report-time filtering works from the cache without re-lexing.
#[derive(Debug, Clone, Default)]
pub struct Waivers {
    /// `(comment line, rule id)` for each `// lint: allow(<rule>)`.
    pub allows: Vec<(u32, String)>,
    /// Lines of `// lint: sorted` comments (A3's semantic waiver).
    pub sorted: Vec<u32>,
}

impl Waivers {
    /// Extracts every waiver comment from a lexed file.
    pub fn harvest(lexed: &Lexed) -> Waivers {
        let mut w = Waivers::default();
        for c in &lexed.comments {
            let mut rest = c.text.as_str();
            while let Some(at) = rest.find("lint: allow(") {
                rest = &rest[at + "lint: allow(".len()..];
                if let Some(end) = rest.find(')') {
                    w.allows.push((c.line, rest[..end].trim().to_string()));
                    rest = &rest[end..];
                } else {
                    break;
                }
            }
            if c.text.contains("lint: sorted") {
                w.sorted.push(c.line);
            }
        }
        w
    }

    /// True when `// lint: allow(<rule>)` sits on `line` or the line above
    /// — the same window as [`Lexed::comment_above_contains`] with 1.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        let lo = line.saturating_sub(1);
        self.allows
            .iter()
            .any(|(l, r)| *l >= lo && *l <= line && r == rule)
    }

    /// True when `// lint: sorted` sits on `line` or the line above.
    pub fn sorted_at(&self, line: u32) -> bool {
        let lo = line.saturating_sub(1);
        self.sorted.iter().any(|l| *l >= lo && *l <= line)
    }
}

/// One config-free finding: an index into [`RULES`], a line, a message.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: usize,
    pub line: u32,
    pub message: String,
}

/// Everything the token rules can say about a file *before* policy:
/// findings for D1–D4/D6–D8, and the raw `unsafe` site list for D5 (whose
/// message depends on the config's allowlist). Content-addressed cacheable.
#[derive(Debug, Clone, Default)]
pub struct RawAnalysis {
    pub findings: Vec<RawFinding>,
    /// `(line, has SAFETY comment within 3 lines above)` per `unsafe`.
    pub unsafe_sites: Vec<(u32, bool)>,
}

/// Runs every token rule on one lexed file, config-free.
pub fn raw_check(lexed: &Lexed) -> RawAnalysis {
    let default_rc = RuleConfig::default();
    let mut out = RawAnalysis::default();
    for (ri, rule) in RULES.iter().enumerate() {
        if rule.id == "D5" {
            continue; // handled below: its message depends on the allowlist
        }
        let ctx = FileCtx {
            path: "",
            lexed,
            rule: &default_rc,
        };
        let mut findings = Vec::new();
        (rule.check)(&ctx, &mut findings);
        out.findings
            .extend(findings.into_iter().map(|f| RawFinding {
                rule: ri,
                line: f.line,
                message: f.message,
            }));
    }
    for t in &lexed.tokens {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            let has_safety = lexed.comment_above_contains(t.line, 3, "SAFETY:");
            out.unsafe_sites.push((t.line, has_safety));
        }
    }
    out
}

/// Applies policy (severity, path scoping, waivers) to a raw analysis.
pub fn report(
    path: &str,
    raw: &RawAnalysis,
    waivers: &Waivers,
    config: &Config,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &raw.findings {
        let rule = &RULES[f.rule];
        let rc = config.rule(rule.id);
        if !rc.applies_to(path) {
            continue;
        }
        if waivers.allowed(f.line, rule.id) {
            continue;
        }
        diags.push(Diagnostic {
            rule: rule.id,
            name: rule.name,
            severity: rc.severity.expect("applies implies enabled"),
            path: path.to_string(),
            line: f.line,
            message: f.message.clone(),
        });
    }
    // D5 interprets `allow` itself ("unsafe is permitted here, with a
    // SAFETY comment") — for every other rule `allow` is an exemption.
    let rc = config.rule("D5");
    let d5_applies = rc.severity.is_some()
        && (rc.paths.is_empty() || rc.paths.iter().any(|p| path.starts_with(p.as_str())));
    if d5_applies {
        let allowed_here = rc.allow.iter().any(|p| path.starts_with(p.as_str()));
        let severity = rc.severity.expect("checked above");
        for &(line, has_safety) in &raw.unsafe_sites {
            if waivers.allowed(line, "D5") {
                continue;
            }
            let message = if !allowed_here {
                "`unsafe` outside the allowlist (lint.toml `rules.D5.allow`); \
                 this workspace pins unsafe to the deterministic pool internals"
                    .to_string()
            } else if !has_safety {
                "`unsafe` without a `// SAFETY:` comment in the three lines above".to_string()
            } else {
                continue;
            };
            diags.push(Diagnostic {
                rule: "D5",
                name: "unsafe-safety",
                severity,
                path: path.to_string(),
                line,
                message,
            });
        }
    }
    diags
}

/// Runs every applicable rule on one file.
pub fn check_file(path: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let raw = raw_check(&lexed);
    let waivers = Waivers::harvest(&lexed);
    report(path, &raw, &waivers, config)
}

// ---------------------------------------------------------------------------
// D1: wall-clock reads
// ---------------------------------------------------------------------------

fn d1_wallclock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks().iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            // Allow the *type* to appear in `use` renames? No — any mention
            // in a restricted file is a finding; the fix is to move timing
            // into crates/bench or an example.
            let _ = i;
            out.push(Finding {
                line: t.line,
                message: format!(
                    "wall-clock type `{}` outside the bench/example allowlist; \
                     simulated time must come from the engine, not the host",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D2: HashMap/HashSet iteration
// ---------------------------------------------------------------------------

/// Methods whose results observe hash order.
const ORDER_LEAKING: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Finds names bound (via `let`, `static`, struct fields or fn params) to a
/// type mentioning any of `type_names` anywhere in the file. Scope-free by
/// design: a false *merge* across functions only widens the net.
fn bindings_of_types(ctx: &FileCtx<'_>, type_names: &[&str]) -> BTreeSet<String> {
    let toks = ctx.toks();
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !type_names.contains(&t.text.as_str()) {
            continue;
        }
        // Walk backwards to the statement boundary looking for `let [mut] X`
        // or the nearest `X :` (field, param, or static declaration).
        let mut j = i;
        let mut candidate: Option<String> = None;
        while j > 0 {
            j -= 1;
            let tok = &toks[j];
            if tok.kind == TokKind::Punct && matches!(tok.text.as_str(), ";" | "{" | "}") {
                break;
            }
            if i - j > 48 {
                break; // bounded lookbehind
            }
            if tok.kind == TokKind::Ident {
                match tok.text.as_str() {
                    "let" | "static" => {
                        let mut k = j + 1;
                        if ctx.ident(k) == Some("mut") {
                            k += 1;
                        }
                        if let Some(name) = ctx.ident(k) {
                            candidate = Some(name.to_string());
                        }
                        break;
                    }
                    _ if ctx.is_punct(j + 1, ':') && !ctx.is_punct(j + 2, ':') => {
                        // `name: HashMap<..>` — field/param/static type
                        // ascription (a lone `:`, not a `::` path).
                        candidate.get_or_insert_with(|| tok.text.clone());
                    }
                    _ => {}
                }
            }
        }
        if let Some(name) = candidate {
            names.insert(name);
        }
    }
    names
}

fn d2_hash_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let hashed = bindings_of_types(ctx, &["HashMap", "HashSet"]);
    if hashed.is_empty() {
        return;
    }
    let toks = ctx.toks();
    let waived = |line: u32| ctx.lexed.comment_above_contains(line, 1, "lint: sorted");

    for i in 0..toks.len() {
        // `name.order_leaking_method(`
        if let Some(name) = ctx.ident(i) {
            if hashed.contains(name) {
                for m in ORDER_LEAKING {
                    if ctx.is_method(i + 1, m) && ctx.is_punct(i + 3, '(') {
                        let line = toks[i].line;
                        if !waived(line) {
                            out.push(Finding {
                                line,
                                message: format!(
                                    "`{}.{}()` observes hash order on a HashMap/HashSet \
                                     binding; use a BTree collection or sort first \
                                     (waive with `// lint: sorted` if one already follows)",
                                    name, m
                                ),
                            });
                        }
                    }
                }
            }
        }
        // `for pat in [&|mut]* name`
        if ctx.ident(i) == Some("for") {
            let mut j = i + 1;
            let limit = (i + 24).min(toks.len());
            while j < limit && ctx.ident(j) != Some("in") {
                j += 1;
            }
            if j >= limit {
                continue;
            }
            let mut k = j + 1;
            while ctx.is_punct(k, '&') || ctx.is_punct(k, '*') || ctx.ident(k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = ctx.ident(k) {
                // `name(`, `name.`, `name::` are calls/projections, handled
                // (or deliberately not) above; a bare binding ends the expr.
                let next_is_projection = ctx.is_punct(k + 1, '(')
                    || ctx.is_punct(k + 1, '.')
                    || ctx.is_punct(k + 1, ':');
                if hashed.contains(name) && !next_is_projection {
                    let line = toks[k].line;
                    if !waived(line) && !waived(toks[i].line) {
                        out.push(Finding {
                            line,
                            message: format!(
                                "`for … in {}` iterates a HashMap/HashSet in hash order; \
                                 use a BTree collection or sort first \
                                 (waive with `// lint: sorted` if order is re-established)",
                                name
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D3: ad-hoc parallelism
// ---------------------------------------------------------------------------

fn d3_parallelism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks();
    for i in 0..toks.len() {
        for member in ["spawn", "scope", "Builder"] {
            if ctx.is_path_call(i, "thread", member) {
                out.push(Finding {
                    line: toks[i].line,
                    message: format!(
                        "`thread::{}` outside `ml::par::pool`; all parallelism must go \
                         through the persistent deterministic worker pool",
                        member
                    ),
                });
            }
        }
        if ctx.ident(i) == Some("rayon") {
            out.push(Finding {
                line: toks[i].line,
                message: "`rayon` is banned; use `ml::par::par_map` (thread-count invariant)"
                    .into(),
            });
        }
        if ctx.is_method(i, "spawn") && ctx.is_punct(i + 2, '(') {
            out.push(Finding {
                line: toks[i + 1].line,
                message: "`.spawn(…)` outside `ml::par::pool`; all parallelism must go \
                          through the persistent deterministic worker pool"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D4: unseeded RNG
// ---------------------------------------------------------------------------

fn d4_unseeded_rng(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.toks() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "thread_rng" | "ThreadRng" | "from_entropy" | "from_os_rng" | "OsRng"
        ) {
            out.push(Finding {
                line: t.line,
                message: format!(
                    "`{}` draws entropy the trace cannot replay; derive every RNG from a \
                     recorded seed (`StdRng::seed_from_u64`)",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D5: unsafe blocks
// ---------------------------------------------------------------------------

fn d5_unsafe_safety(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let allowed_here = ctx
        .rule
        .allow
        .iter()
        .any(|p| ctx.path.starts_with(p.as_str()));
    for t in ctx.toks() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !allowed_here {
            out.push(Finding {
                line: t.line,
                message: "`unsafe` outside the allowlist (lint.toml `rules.D5.allow`); \
                          this workspace pins unsafe to the deterministic pool internals"
                    .into(),
            });
        } else if !ctx.lexed.comment_above_contains(t.line, 3, "SAFETY:") {
            out.push(Finding {
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment in the three lines above".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D6: Debug formatting as key material
// ---------------------------------------------------------------------------

fn d6_debug_key(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.toks() {
        if t.kind == TokKind::Str && (t.text.contains("{:?}") || t.text.contains("{:#?}")) {
            out.push(Finding {
                line: t.line,
                message: "`{:?}` format string in a cache-key module; `Debug` output is \
                          not stable across versions — hash canonical fields instead"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// D7: bare float sums over par_map results
// ---------------------------------------------------------------------------

fn d7_float_sum(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks();
    let par_bindings = {
        // `let parts = …par_map(…)…;` — reuse the binding scanner with the
        // function name standing in for a type name.
        bindings_of_types(ctx, &["par_map"])
    };

    // Statement windows: split on `;` only. Braces are deliberately *not*
    // boundaries so `par_map(…, |x| { … }).iter().sum()` stays one window;
    // the cost is that brace-only tail expressions merge into the next
    // statement, which widens the net slightly.
    let mut start = 0usize;
    let mut windows: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == ";" {
            windows.push((start, i));
            start = i + 1;
        }
    }
    windows.push((start, toks.len()));

    for (lo, hi) in windows {
        let w = &toks[lo..hi];
        let touches_par = w.iter().any(|t| {
            t.kind == TokKind::Ident && (t.text == "par_map" || par_bindings.contains(&t.text))
        });
        if !touches_par {
            continue;
        }
        let mentions_float = w
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"));
        for i in lo..hi {
            if !ctx.is_method(i, "sum") {
                continue;
            }
            let line = toks[i + 1].line;
            // `.sum::<T>()` — inspect the turbofish type.
            let flagged = if ctx.is_punct(i + 2, ':') && ctx.is_punct(i + 3, ':') {
                matches!(ctx.ident(i + 5), Some("f32") | Some("f64"))
            } else {
                // plain `.sum()` — only flag when floats are in play.
                mentions_float
            };
            if flagged {
                out.push(Finding {
                    line,
                    message: "bare float `.sum()` over `par_map` results; float addition \
                              is non-associative — fold serially in input order via a \
                              blessed reduction helper"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D8: CPU-arch intrinsics outside the SIMD module
// ---------------------------------------------------------------------------

fn d8_arch_confinement(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        if text == "is_x86_feature_detected" {
            out.push(Finding {
                line: t.line,
                message: "`is_x86_feature_detected!` outside the SIMD module; CPU-feature \
                          dispatch must live in `ml::simd` next to its scalar fallback"
                    .into(),
            });
            continue;
        }
        if (text == "core" || text == "std") && ctx.is_path_call(i, text, "arch") {
            out.push(Finding {
                line: t.line,
                message: format!(
                    "`{}::arch` outside the SIMD module; explicit-lane kernels are confined \
                     to `ml::simd` so the bitwise f32 contract stays auditable",
                    text
                ),
            });
            continue;
        }
        if text.starts_with("_mm") || text.starts_with("__m") {
            out.push(Finding {
                line: t.line,
                message: format!(
                    "intrinsic identifier `{}` outside the SIMD module; wrap it in an \
                     `ml::simd` kernel with a dispatch check and scalar fallback",
                    text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Severity;

    /// A config that applies every rule to every path at `error`, with D5
    /// unsafe permitted under `allowed/`.
    fn everywhere() -> Config {
        let mut c = Config {
            include: vec![],
            exclude: vec![],
            rules: Default::default(),
        };
        c.rules.insert(
            "D5".into(),
            RuleConfig {
                severity: Some(Severity::Error),
                paths: vec![],
                allow: vec!["allowed/".into()],
                ..Default::default()
            },
        );
        c.rules.insert(
            "D6".into(),
            RuleConfig {
                severity: Some(Severity::Error),
                paths: vec!["cachekey/".into()],
                allow: vec![],
                ..Default::default()
            },
        );
        c
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = check_file(path, src, &everywhere())
            .into_iter()
            .map(|d| d.rule)
            .collect();
        ids.dedup();
        ids
    }

    #[test]
    fn d2_tracks_bindings_and_waivers() {
        let bad = "let mut m: HashMap<u32, f64> = HashMap::new();\n\
                   for (k, v) in &m { body(k, v); }\n";
        assert_eq!(rules_hit("x.rs", bad), vec!["D2"]);

        let waived = "let mut m: HashMap<u32, f64> = HashMap::new();\n\
                      // lint: sorted\n\
                      let mut pairs: Vec<_> = m.iter().collect();\n\
                      pairs.sort();\n";
        assert!(rules_hit("x.rs", waived).is_empty());
    }

    #[test]
    fn d2_ignores_lookups_and_vec_iteration() {
        let good = "let m: HashMap<u32, f64> = HashMap::new();\n\
                    let hit = m.get(&3).cloned();\n\
                    let v: Vec<u32> = vec![];\n\
                    for x in &v { body(x); }\n";
        assert!(rules_hit("x.rs", good).is_empty());
    }

    #[test]
    fn d5_allowlist_and_safety_comment() {
        let no_comment = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(rules_hit("other.rs", no_comment), vec!["D5"]);
        assert_eq!(rules_hit("allowed/par.rs", no_comment), vec!["D5"]);
        let with_comment =
            "// SAFETY: index is bounds-checked by the caller.\nfn f() { unsafe { g() } }";
        assert!(rules_hit("allowed/par.rs", with_comment).is_empty());
        // The comment does not rescue a non-allowlisted file.
        assert_eq!(rules_hit("other.rs", with_comment), vec!["D5"]);
    }

    #[test]
    fn d7_turbofish_and_context() {
        let bad = "let total: f32 = par_map(&xs, |_, x| x.cost()).iter().sum();";
        assert_eq!(rules_hit("x.rs", bad), vec!["D7"]);
        let bad_tf = "let t = par_map(&xs, work).iter().sum::<f64>();";
        assert_eq!(rules_hit("x.rs", bad_tf), vec!["D7"]);
        let good_usize = "let t = par_map(&xs, work).iter().sum::<usize>();";
        assert!(rules_hit("x.rs", good_usize).is_empty());
        let good_serial = "let parts = par_map(&xs, work);\n\
                           let mut total = 0.0f32;\n\
                           for p in &parts { total += p; }\n";
        assert!(rules_hit("x.rs", good_serial).is_empty());
    }

    #[test]
    fn d6_only_fires_in_key_modules() {
        let src = "let key = format!(\"model={:?}\", model);";
        assert_eq!(rules_hit("cachekey/cache.rs", src), vec!["D6"]);
        assert!(rules_hit("elsewhere/debug.rs", src).is_empty());
    }

    #[test]
    fn generic_allow_waiver_suppresses_any_rule() {
        let src = "// lint: allow(D4)\nlet r = thread_rng();";
        assert!(rules_hit("x.rs", src).is_empty());
        let unwaived = "let r = thread_rng();";
        assert_eq!(rules_hit("x.rs", unwaived), vec!["D4"]);
    }

    #[test]
    fn d8_catches_arch_paths_macros_and_intrinsics() {
        assert_eq!(
            rules_hit("x.rs", "let ok = is_x86_feature_detected!(\"avx2\");"),
            vec!["D8"]
        );
        assert_eq!(
            rules_hit("x.rs", "use core::arch::x86_64::_mm256_add_ps;"),
            vec!["D8"]
        );
        assert_eq!(
            rules_hit("x.rs", "fn f(v: __m256i) { _mm256_setzero_si256(); }"),
            vec!["D8"]
        );
        // `std::arch` spelled as a path fires too; unrelated idents do not.
        assert_eq!(
            rules_hit("x.rs", "let m = std::arch::breakpoint;"),
            vec!["D8"]
        );
        assert!(rules_hit("x.rs", "let arch = \"x86_64\"; let march = arch;").is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_never_fire() {
        let src = "// Instant, SystemTime, thread_rng, unsafe, rayon\n\
                   let s = \"thread::spawn {:?} from_entropy\";\n";
        assert!(rules_hit("x.rs", src).is_empty());
    }
}
