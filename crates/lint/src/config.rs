//! `lint.toml` — rule severities and per-path scoping/waivers.
//!
//! The parser accepts the TOML subset the checked-in config actually uses:
//! `[dotted.table]` headers, `key = "string"`, `key = ["array", "of",
//! "strings"]`, `key = true|false|<integer>`, and `#` comments. Anything
//! else is a hard error — a config typo must fail loudly, not silently
//! disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, never fails the run.
    Warn,
    /// Fails the run (non-zero exit).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Per-rule configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// `error`, `warn`, or disabled entirely (`off` in the TOML).
    pub severity: Option<Severity>,
    /// Path prefixes the rule is *restricted to*; empty = everywhere.
    pub paths: Vec<String>,
    /// Path prefixes exempt from the rule.
    pub allow: Vec<String>,
    /// Call-graph root patterns for reachability rules (A1/A2): full fn
    /// ids with `*` wildcards, e.g. `ml::*_into`.
    pub roots: Vec<String>,
    /// Path prefixes where A2 additionally checks unguarded indexing
    /// (the serving modules; ml kernels index by loop bounds by
    /// construction — a documented non-goal).
    pub index_paths: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            severity: Some(Severity::Error),
            paths: Vec::new(),
            allow: Vec::new(),
            roots: Vec::new(),
            index_paths: Vec::new(),
        }
    }
}

impl RuleConfig {
    /// Whether the rule applies to `path` (workspace-relative, `/`-separated).
    pub fn applies_to(&self, path: &str) -> bool {
        if self.severity.is_none() {
            return false;
        }
        if !self.paths.is_empty() && !self.paths.iter().any(|p| path.starts_with(p.as_str())) {
            return false;
        }
        !self.allow.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The whole lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub include: Vec<String>,
    /// Path prefixes never walked or linted.
    pub exclude: Vec<String>,
    /// Per-rule settings keyed by rule id (`D1`..`D7`). A missing entry
    /// means the rule runs everywhere at `error`.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec!["crates".into(), "src".into()],
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        }
    }
}

impl Config {
    /// The effective configuration for rule `id`.
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut config = Config {
            include: Vec::new(),
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        };
        let mut section: Vec<String> = Vec::new();

        for (lineno, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated table header", lineno + 1))?;
                section = header.split('.').map(|s| s.trim().to_string()).collect();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value =
                parse_value(value.trim()).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
            apply(&mut config, &section, key, value)
                .map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        }
        if config.include.is_empty() {
            config.include = Config::default().include;
        }
        Ok(config)
    }
}

/// A parsed TOML value (the subset we accept).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Array(Vec<String>),
    Bool(bool),
    Int(i64),
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(s: &str) -> Result<String, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{}`", s))?;
    // The config only ever holds paths and rule names; reject escapes
    // rather than mis-handle them.
    if inner.contains('\\') {
        return Err("string escapes are not supported in lint.toml".into());
    }
    Ok(inner.to_string())
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("multi-line arrays are not supported in lint.toml")?;
        let body = body.trim();
        if body.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(item)?);
        }
        return Ok(Value::Array(items));
    }
    Ok(Value::Str(parse_string(s)?))
}

fn as_array(value: Value) -> Result<Vec<String>, String> {
    match value {
        Value::Array(a) => Ok(a),
        Value::Str(s) => Ok(vec![s]),
        other => Err(format!("expected an array of strings, got {:?}", other)),
    }
}

fn apply(config: &mut Config, section: &[String], key: &str, value: Value) -> Result<(), String> {
    let path: Vec<&str> = section.iter().map(String::as_str).collect();
    match (path.as_slice(), key) {
        ([], "schema") => Ok(()), // accepted for forward-compat, unused
        (["paths"], "include") => {
            config.include = as_array(value)?;
            Ok(())
        }
        (["paths"], "exclude") => {
            config.exclude = as_array(value)?;
            Ok(())
        }
        (["rules", rule], _) => {
            let entry = config.rules.entry(rule.to_string()).or_default();
            match key {
                "severity" => {
                    let s = match value {
                        Value::Str(s) => s,
                        other => return Err(format!("severity must be a string, got {:?}", other)),
                    };
                    entry.severity = match s.as_str() {
                        "error" => Some(Severity::Error),
                        "warn" => Some(Severity::Warn),
                        "off" => None,
                        other => {
                            return Err(format!(
                                "unknown severity `{}` (expected error|warn|off)",
                                other
                            ))
                        }
                    };
                    Ok(())
                }
                "paths" => {
                    entry.paths = as_array(value)?;
                    Ok(())
                }
                "allow" => {
                    entry.allow = as_array(value)?;
                    Ok(())
                }
                "roots" => {
                    entry.roots = as_array(value)?;
                    Ok(())
                }
                "index_paths" => {
                    entry.index_paths = as_array(value)?;
                    Ok(())
                }
                other => Err(format!("unknown rule key `{}`", other)),
            }
        }
        _ => Err(format!(
            "unknown config location `[{}] {}`",
            section.join("."),
            key
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let src = r#"
            # top comment
            schema = 1

            [paths]
            include = ["crates", "src"]
            exclude = ["vendored", "target"] # trailing comment

            [rules.D1]
            severity = "error"
            allow = ["crates/bench/"]

            [rules.D2]
            severity = "warn"
            paths = ["crates/core/"]

            [rules.D3]
            severity = "off"
        "#;
        let c = Config::parse(src).expect("parse");
        assert_eq!(c.include, vec!["crates", "src"]);
        assert_eq!(c.exclude, vec!["vendored", "target"]);
        assert_eq!(c.rule("D1").severity, Some(Severity::Error));
        assert_eq!(c.rule("D1").allow, vec!["crates/bench/"]);
        assert_eq!(c.rule("D2").severity, Some(Severity::Warn));
        assert_eq!(c.rule("D3").severity, None);
        // unmentioned rule defaults to error-everywhere
        assert_eq!(c.rule("D7").severity, Some(Severity::Error));
    }

    #[test]
    fn applies_to_respects_paths_and_allow() {
        let rule = RuleConfig {
            severity: Some(Severity::Error),
            paths: vec!["crates/core/".into()],
            allow: vec!["crates/core/examples/".into()],
            ..Default::default()
        };
        assert!(rule.applies_to("crates/core/src/attack.rs"));
        assert!(!rule.applies_to("crates/bench/src/lib.rs"));
        assert!(!rule.applies_to("crates/core/examples/probe.rs"));
        let off = RuleConfig {
            severity: None,
            ..rule
        };
        assert!(!off.applies_to("crates/core/src/attack.rs"));
    }

    #[test]
    fn rejects_typos_loudly() {
        assert!(Config::parse("[rules.D1]\nseverty = \"error\"").is_err());
        assert!(Config::parse("[rules.D1]\nseverity = \"fatal\"").is_err());
        assert!(Config::parse("[paths]\ninclude = [\"a\"").is_err());
        assert!(Config::parse("just a line").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let c = Config::parse("[paths]\ninclude = [\"a#b\"]").expect("parse");
        assert_eq!(c.include, vec!["a#b"]);
    }
}
