//! `lint_bench` — times a cold vs warm `leaky-lint` run over the workspace
//! and merges a `lint` section into `BENCH_pipeline.json` (preserving every
//! other binary's keys, same contract as the `bench` crate's binaries).
//!
//! The cold run starts from an empty cache directory and pays the full
//! lex/parse/fact-extraction cost for every file; the warm run re-reads the
//! same tree and should satisfy every file from the content-hash cache.
//! CI's bench-smoke job gates on `warm_secs <= cold_secs` — the incremental
//! path regressing to slower-than-cold means the cache is broken, not just
//! slow.
//!
//! Timing itself is this binary's whole job, so it uses `Instant` directly;
//! `lint.toml` allowlists `crates/lint/` for D1 for exactly this file.

use std::path::{Path, PathBuf};
use std::time::Instant;

fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() {
    let root = find_root();
    let config = match lint::load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint_bench: {}", e);
            std::process::exit(2);
        }
    };

    // A private cache directory so the bench never poisons (or is skewed
    // by) the CLI's own cache under target/leaky-lint-cache.
    let cache_dir = root.join("target/leaky-lint-cache-bench");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let t0 = Instant::now();
    let cold = lint::run_full(&root, &config, Some(&cache_dir)).expect("cold lint run");
    let cold_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm = lint::run_full(&root, &config, Some(&cache_dir)).expect("warm lint run");
    let warm_secs = t1.elapsed().as_secs_f64();

    assert_eq!(
        cold.diags, warm.diags,
        "cached analysis disagrees with the from-scratch analysis"
    );
    assert_eq!(
        warm.stats.cache_hits, warm.stats.files_analyzed,
        "warm run missed the cache on {} of {} files",
        warm.stats.cache_misses, warm.stats.files_analyzed
    );

    let section = format!(
        "{{\n    \"files_analyzed\": {},\n    \"cold_secs\": {:.6},\n    \"warm_secs\": {:.6}\n  }}",
        cold.stats.files_analyzed, cold_secs, warm_secs
    );
    let path = root.join("BENCH_pipeline.json");
    merge_section(&path, "lint", &section);
    println!(
        "lint: {} files, cold {:.3}s, warm {:.3}s ({:.1}x) -> {}",
        cold.stats.files_analyzed,
        cold_secs,
        warm_secs,
        if warm_secs > 0.0 {
            cold_secs / warm_secs
        } else {
            f64::INFINITY
        },
        path.display()
    );
}

/// Replaces (or appends) one top-level key of a JSON object file, keeping
/// every other key's raw text byte-for-byte. The lint crate is
/// dependency-free, so this is a minimal balanced-scan splitter rather than
/// a full JSON parser; anything it cannot read as a `{…}` object is
/// replaced wholesale.
fn merge_section(path: &Path, key: &str, raw_value: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut fields = split_top_level(&existing).unwrap_or_default();
    fields.retain(|(k, _)| k != key);
    fields.push((key.to_string(), raw_value.to_string()));
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{}\": {}", k, v));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    std::fs::write(path, out).expect("write BENCH_pipeline.json");
}

/// Splits `{"k1": v1, "k2": v2, …}` into raw `(key, value-text)` pairs.
/// Tracks brace/bracket depth and string escapes; returns `None` on any
/// input that is not a top-level JSON object.
fn split_top_level(json: &str) -> Option<Vec<(String, String)>> {
    let s = json.trim();
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let b = body.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        if b[i] != b'"' {
            return None;
        }
        let (key, after_key) = read_string(b, i)?;
        i = after_key;
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= b.len() || b[i] != b':' {
            return None;
        }
        i += 1;
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let start = i;
        let mut depth = 0usize;
        while i < b.len() {
            match b[i] {
                b'"' => {
                    let (_, next) = read_string(b, i)?;
                    i = next;
                    continue;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.checked_sub(1)?,
                b',' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        fields.push((key, body[start..i].trim_end().to_string()));
        if i < b.len() && b[i] == b',' {
            i += 1;
        }
    }
    Some(fields)
}

/// Reads the JSON string starting at `b[at] == '"'`; returns its unescaped-
/// enough content (escapes kept verbatim — keys here are plain idents) and
/// the index just past the closing quote.
fn read_string(b: &[u8], at: usize) -> Option<(String, usize)> {
    debug_assert!(b.get(at) == Some(&b'"'));
    let mut i = at + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                let content = std::str::from_utf8(&b[at + 1..i]).ok()?.to_string();
                return Some((content, i + 1));
            }
            _ => i += 1,
        }
    }
    None
}
