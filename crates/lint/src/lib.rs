//! # `lint` — the `leaky-lint` static analysis pass
//!
//! The workspace's reproduction contract is *bitwise determinism*: the same
//! seeds must produce the same traces, features, models and
//! `AttackReport`s on any machine, at any thread count, with the cache off
//! or warm. The runtime tests (`tests/determinism.rs`) sample a handful of
//! configurations; this crate enforces the invariants they rely on
//! *statically*, across every `.rs` file in the tree, on every CI run.
//!
//! The rule set (D1–D7) lives in [`rules`]; severities and path scoping
//! live in the checked-in `lint.toml` at the workspace root; [`lexer`] is a
//! hand-rolled token scanner (no `syn` — the workspace builds offline
//! against std-only stand-ins). Run it as:
//!
//! ```text
//! cargo run -p lint              # human-readable report
//! cargo run -p lint -- --json    # machine-readable, for the CI jq gate
//! ```
//!
//! Exit status: `0` clean (warnings allowed), `1` at least one
//! error-severity finding, `2` usage or I/O failure.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

use config::Config;
use diag::Diagnostic;

/// Lints every configured file under `root`, returning sorted diagnostics.
pub fn run(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in walk::rust_files(root, config)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        diags.extend(rules::check_file(&rel, &src, config));
    }
    diag::sort(&mut diags);
    Ok(diags)
}

/// Loads `lint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {}", path.display(), e))?;
    Config::parse(&src).map_err(|e| format!("{}: {}", path.display(), e))
}
