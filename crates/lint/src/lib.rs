//! # `lint` — the `leaky-lint` static analysis pass
//!
//! The workspace's reproduction contract is *bitwise determinism*: the same
//! seeds must produce the same traces, features, models and
//! `AttackReport`s on any machine, at any thread count, with the cache off
//! or warm. The runtime tests (`tests/determinism.rs`) sample a handful of
//! configurations; this crate enforces the invariants they rely on
//! *statically*, across every `.rs` file in the tree, on every CI run.
//!
//! Two rule families:
//!
//! - **D1–D8** ([`rules`]): token-level rules on one file at a time —
//!   wall-clock in kernels, hash-order iteration, unseeded RNG, undocumented
//!   `unsafe`, and friends.
//! - **A1–A4** ([`arules`]): semantic rules over the workspace call graph —
//!   hot-path allocation, panic-free serving, float reduction order, and
//!   threshold confinement. These parse every file into an item skeleton
//!   ([`parser`]), extract per-function facts ([`facts`]), stitch a
//!   workspace call graph ([`graph`]), and check reachability from
//!   configured roots.
//!
//! Per-file work (lex → parse → facts → token findings) is content-hash
//! cached under `target/leaky-lint-cache/` ([`cache`]); the graph passes are
//! recomputed every run. Severities and path scoping live in the checked-in
//! `lint.toml` at the workspace root; the lexer is a hand-rolled token
//! scanner (no `syn` — the workspace builds offline against std-only
//! stand-ins). Run it as:
//!
//! ```text
//! cargo run -p lint                  # human-readable report
//! cargo run -p lint -- --json        # machine-readable, for the CI jq gate
//! cargo run -p lint -- --sarif       # SARIF 2.1.0 for code scanning
//! cargo run -p lint -- --explain A1  # what a rule means and why
//! cargo run -p lint -- --check-config  # audit lint.toml for stale entries
//! ```
//!
//! Exit status: `0` clean (warnings allowed), `1` at least one
//! error-severity finding, `2` usage or I/O failure.

#![forbid(unsafe_code)]

pub mod arules;
pub mod cache;
pub mod config;
pub mod diag;
pub mod facts;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

use cache::FileAnalysis;
use config::Config;
use diag::Diagnostic;
use graph::{FileUnit, Graph};
use rules::Waivers;

/// Counters from one full run, surfaced in `--json` output and the
/// `lint_bench` pipeline benchmark.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunStats {
    /// Files lexed/parsed or loaded from cache this run.
    pub files_analyzed: usize,
    /// Files whose per-file analysis came from the warm cache.
    pub cache_hits: usize,
    /// Files analyzed from scratch (cold cache, changed content, or
    /// caching disabled).
    pub cache_misses: usize,
    /// Call sites the graph could not resolve to a workspace function or
    /// plausibly attribute to std (see `graph::Graph::unresolved`).
    pub unresolved_calls: usize,
    /// Non-test functions indexed into the call graph.
    pub fns_indexed: usize,
}

/// Diagnostics plus run counters.
#[derive(Debug, Default)]
pub struct RunOutput {
    pub diags: Vec<Diagnostic>,
    pub stats: RunStats,
}

/// Lints every configured file under `root`: token rules per file, then
/// the semantic A-rules over the workspace call graph. When `cache_dir`
/// is given, per-file analyses are loaded/stored there keyed by content
/// hash; graph construction and policy always run fresh.
pub fn run_full(
    root: &Path,
    config: &Config,
    cache_dir: Option<&Path>,
) -> std::io::Result<RunOutput> {
    let crate_dirs = discover_crates(root);
    let mut out = RunOutput::default();
    let mut units: Vec<FileUnit> = Vec::new();
    let mut waivers: Vec<Waivers> = Vec::new();

    for rel in walk::rust_files(root, config)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let hash = cache::fnv1a64(src.as_bytes());
        let analysis = match cache_dir.and_then(|d| cache::load(d, &rel, hash)) {
            Some(a) => {
                out.stats.cache_hits += 1;
                a
            }
            None => {
                out.stats.cache_misses += 1;
                let lexed = lexer::lex(&src);
                let parsed = parser::parse(&lexed);
                let facts = facts::extract(&lexed, &parsed);
                let a = FileAnalysis {
                    raw: rules::raw_check(&lexed),
                    parsed,
                    facts,
                    waivers: Waivers::harvest(&lexed),
                };
                if let Some(d) = cache_dir {
                    cache::store(d, &rel, hash, &a);
                }
                a
            }
        };
        out.stats.files_analyzed += 1;
        out.diags.extend(rules::report(
            &rel,
            &analysis.raw,
            &analysis.waivers,
            config,
        ));
        units.push(FileUnit {
            rel,
            parsed: analysis.parsed,
            facts: analysis.facts,
        });
        waivers.push(analysis.waivers);
    }

    let graph = Graph::build(&units, &crate_dirs);
    out.stats.unresolved_calls = graph.unresolved.len();
    out.stats.fns_indexed = graph.nodes.len();
    out.diags
        .extend(arules::check(&units, &waivers, &graph, &crate_dirs, config));
    diag::sort(&mut out.diags);
    Ok(out)
}

/// Compatibility wrapper: diagnostics only, no cache.
pub fn run(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    run_full(root, config, None).map(|o| o.diags)
}

/// Maps workspace member directories (`crates/core`) to package names
/// (`moscons`) by scanning each member's `Cargo.toml` for its first
/// `name = "…"` line. Falls back to the directory name; files outside any
/// member land in a synthetic `workspace` crate.
pub fn discover_crates(root: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        let Some(dir_name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let manifest = dir.join("Cargo.toml");
        let name = std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|src| {
                src.lines().find_map(|l| {
                    let l = l.trim();
                    let rest = l.strip_prefix("name")?.trim_start().strip_prefix('=')?;
                    let rest = rest.trim();
                    let rest = rest.strip_prefix('"')?;
                    Some(rest[..rest.find('"')?].to_string())
                })
            })
            .unwrap_or_else(|| dir_name.clone());
        if manifest.exists() {
            out.insert(format!("crates/{dir_name}"), name);
        }
    }
    out
}

/// Audits `lint.toml` for stale allowlist entries: an `allow` path that
/// prefixes zero walked files, or whose removal changes no diagnostic
/// (it suppresses nothing — for D5, no `unsafe` left under it; for A4, no
/// gate lives there). Returns human-readable problems, empty when clean.
///
/// Analyses are computed once; only the (cheap) policy passes re-run per
/// candidate entry.
pub fn check_config(root: &Path, config: &Config) -> std::io::Result<Vec<String>> {
    let crate_dirs = discover_crates(root);
    let files = walk::rust_files(root, config)?;
    let mut units: Vec<FileUnit> = Vec::new();
    let mut waivers: Vec<Waivers> = Vec::new();
    let mut raws: Vec<rules::RawAnalysis> = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let lexed = lexer::lex(&src);
        let parsed = parser::parse(&lexed);
        let facts = facts::extract(&lexed, &parsed);
        raws.push(rules::raw_check(&lexed));
        waivers.push(Waivers::harvest(&lexed));
        units.push(FileUnit {
            rel: rel.clone(),
            parsed,
            facts,
        });
    }
    let graph = Graph::build(&units, &crate_dirs);
    let eval = |cfg: &Config| -> Vec<Diagnostic> {
        let mut d: Vec<Diagnostic> = units
            .iter()
            .zip(&raws)
            .zip(&waivers)
            .flat_map(|((u, raw), w)| rules::report(&u.rel, raw, w, cfg))
            .collect();
        d.extend(arules::check(&units, &waivers, &graph, &crate_dirs, cfg));
        diag::sort(&mut d);
        d
    };
    let baseline = eval(config);

    let mut problems = Vec::new();
    for (id, rc) in &config.rules {
        for entry in &rc.allow {
            if !files.iter().any(|f| f.starts_with(entry.as_str())) {
                problems.push(format!(
                    "rules.{id}.allow entry `{entry}` matches zero linted files"
                ));
                continue;
            }
            let mut cfg2 = config.clone();
            if let Some(rc2) = cfg2.rules.get_mut(id) {
                rc2.allow.retain(|e| e != entry);
            }
            if eval(&cfg2) == baseline {
                problems.push(format!(
                    "rules.{id}.allow entry `{entry}` suppresses zero findings (stale)"
                ));
            }
        }
    }
    Ok(problems)
}

/// Loads `lint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {}", path.display(), e))?;
    Config::parse(&src).map_err(|e| format!("{}: {}", path.display(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_crates_maps_this_workspace() {
        // The lint crate's own manifest dir is crates/lint, two up is root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let map = discover_crates(&root);
        assert_eq!(map.get("crates/lint").map(String::as_str), Some("lint"));
        assert!(map.contains_key("crates/ml"));
        assert!(map.contains_key("crates/core"));
    }
}
