//! Per-file fact extraction for the semantic rules (A1–A4).
//!
//! Facts are deliberately *config-independent*: everything here is derived
//! from one file's tokens alone, which is what makes the per-file
//! incremental cache sound (same content ⇒ same facts, whatever `lint.toml`
//! says today). Policy — which roots matter, which paths are exempt — is
//! applied later by the rule engine over the whole-workspace [`crate::graph`].
//!
//! Per function we record:
//! * **calls** — free-path and method calls, with just enough receiver
//!   shape (`self`, local binding, field access) for the graph's
//!   receiver-type heuristic;
//! * **allocation sites** — the A1 ban list (`Vec::new`, `vec!`,
//!   `.to_vec()`, `.clone()`, `.collect()`, `Box::new`, `format!`,
//!   `String::new/from`, `.to_string()`, `.to_owned()`,
//!   `Vec::with_capacity`);
//! * **panic sites** — the A2 ban list (`unwrap`/`expect`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!`; the `assert!` family is
//!   *allowed* — dimension asserts are call-site contract checks, and
//!   `debug_assert!` compiles out of release serving builds);
//! * **index sites** with a local guardedness verdict (an `assert!`,
//!   `for`-header or `if`/`while` condition in the same body mentioning the
//!   indexed name);
//! * **float `+=` folds** inside `for` loops, with the iterated
//!   expression's root and adapter chain for A3's order classification;
//! * **local binding types** (params, `let` ascriptions, `Type::new`
//!   inference) for receiver and iterator classification.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::ParsedFile;

/// How a method call's receiver was written.
#[derive(Debug, Clone, PartialEq)]
pub enum Recv {
    /// `self.method(..)`
    SelfRecv,
    /// `binding.method(..)` — a plain local name.
    Ident(String),
    /// `….field.method(..)` — last field name in an access chain
    /// (includes `self.field.method(..)`).
    Field(String),
    /// Anything else (call results, literals, parenthesized exprs).
    Other,
}

/// One call site.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// `a::b::c(..)` — path segments as written (length 1 for `foo(..)`).
    Free(Vec<String>),
    /// `recv.name(..)`
    Method { recv: Recv, name: String },
}

#[derive(Debug, Clone)]
pub struct CallFact {
    pub line: u32,
    pub callee: Callee,
}

/// One banned-construct site (allocation or panic), with the construct
/// spelled the way the diagnostic should print it.
#[derive(Debug, Clone)]
pub struct SiteFact {
    pub line: u32,
    pub what: String,
}

/// One `recv[sub]` subscript site.
#[derive(Debug, Clone)]
pub struct IndexFact {
    pub line: u32,
    pub recv: String,
    /// A guard in the same body mentions the indexed name (and the
    /// subscript name, when the subscript is not a literal).
    pub guarded: bool,
}

/// The root of an iterated expression in a `for` loop.
#[derive(Debug, Clone, PartialEq)]
pub enum IterRoot {
    /// `for x in 0..n` / `a..=b` — ranges iterate in order by construction.
    Range,
    /// `for x in binding…` — classify via the binding's harvested type.
    Ident(String),
    /// `for x in self.field…` / `….field…` — classify via the field map.
    Field(String),
    /// `for x in path::to::fn_call(..)…` — classify via the callee's
    /// return type through the call graph.
    Call(Vec<String>),
    /// Unclassifiable root (literals, complex expressions).
    Other,
}

/// One float `+=` fold inside a `for` loop.
#[derive(Debug, Clone)]
pub struct FoldFact {
    /// Line of the `+=`.
    pub line: u32,
    /// Line of the `for` keyword (waivers may sit on either).
    pub loop_line: u32,
    /// Accumulator name, for the diagnostic.
    pub acc: String,
    pub root: IterRoot,
    /// Method names invoked along the iterated expression's adapter chain,
    /// in order (`["iter", "zip"]` for `xs.iter().zip(&ys)`).
    pub chain: Vec<String>,
}

/// Everything rule-relevant about one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub calls: Vec<CallFact>,
    pub allocs: Vec<SiteFact>,
    pub panics: Vec<SiteFact>,
    pub indexes: Vec<IndexFact>,
    pub folds: Vec<FoldFact>,
    /// Local binding name → type text (params, `let` ascriptions,
    /// `Type::new(..)` / `Type { .. }` inference).
    pub bindings: BTreeMap<String, String>,
}

/// Facts for one file: per-fn facts parallel to `ParsedFile::fns`.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub fns: Vec<FnFacts>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "break", "continue", "in", "let",
    "mut", "ref", "move", "as", "where", "unsafe", "async", "await", "fn", "impl", "dyn",
];

/// Alloc-constructor paths for A1 (`Type::method` pairs).
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Alloc-method names for A1.
const ALLOC_METHODS: &[&str] = &["to_vec", "clone", "collect", "to_string", "to_owned"];

/// Alloc-macro names for A1.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Panic-method names for A2.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Panic-macro names for A2.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Guard-macro names whose arguments establish index guardedness.
const GUARD_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Extracts facts for every function in `parsed`.
pub fn extract(lexed: &Lexed, parsed: &ParsedFile) -> FileFacts {
    let mut out = FileFacts::default();
    for f in &parsed.fns {
        let mut ff = FnFacts::default();
        for p in &f.params {
            ff.bindings.insert(p.name.clone(), p.ty.clone());
        }
        if let Some((lo, hi)) = f.body {
            let body = &lexed.tokens[lo..hi];
            harvest_lets(body, &mut ff.bindings);
            let guards = harvest_guards(body);
            scan_body(body, &guards, parsed, &mut ff);
        }
        out.fns.push(ff);
    }
    out
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

/// `let [mut] name [: TY] = …` binding harvest (including `let … else`).
fn harvest_lets(body: &[Tok], bindings: &mut BTreeMap<String, String>) {
    let mut i = 0;
    while i < body.len() {
        if ident_at(body, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if ident_at(body, j) == Some("mut") {
            j += 1;
        }
        let Some(name) = ident_at(body, j) else {
            i = j;
            continue;
        };
        if KEYWORDS.contains(&name) || name.chars().next().is_some_and(|c| c.is_uppercase()) {
            // `let Some(x) = …`, `let Engine::Int8 { .. } = …` — destructure
            // patterns fall back to the field map at resolution time.
            i = j;
            continue;
        }
        let name = name.to_string();
        j += 1;
        if is_punct(body, j, ':') && !is_punct(body, j + 1, ':') {
            // ascription: type runs to `=` or `;` at depth 0
            j += 1;
            let mut depth = 0usize;
            let mut ty = String::new();
            while j < body.len() {
                match body[j].text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" if depth > 0 => depth -= 1,
                    "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&body[j].text);
                j += 1;
            }
            bindings.insert(name, ty);
        } else if is_punct(body, j, '=') {
            // init inference: `= Type::new(..)` / `= Type { .. }` /
            // `= vec![..]` / float literal
            j += 1;
            if is_punct(body, j, '&') {
                j += 1;
            }
            if let Some(first) = ident_at(body, j) {
                let cap = first.chars().next().is_some_and(|c| c.is_uppercase());
                if first == "vec" && is_punct(body, j + 1, '!') {
                    bindings.entry(name).or_insert_with(|| "Vec".to_string());
                } else if cap && (is_punct(body, j + 1, ':') || is_punct(body, j + 1, '{')) {
                    bindings.entry(name).or_insert_with(|| first.to_string());
                }
            } else if let Some(t) = body.get(j) {
                if t.kind == TokKind::Number && is_float_literal(&t.text) {
                    bindings.entry(name).or_insert_with(|| "f64".to_string());
                }
            }
        }
        i = j;
    }
}

fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (text.contains(['e', 'E']) && !text.contains('x'))
}

/// Identifier sets mentioned by guards in this body: `assert!` family
/// arguments, `for` headers, `if`/`while` conditions.
fn harvest_guards(body: &[Tok]) -> Vec<Vec<String>> {
    let mut guards = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match ident_at(body, i) {
            Some(m) if GUARD_MACROS.contains(&m) && is_punct(body, i + 1, '!') => {
                // args: balanced group after `!`
                let mut j = i + 2;
                let mut depth = 0usize;
                let mut ids = Vec::new();
                while j < body.len() {
                    match body[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if body[j].kind == TokKind::Ident {
                                ids.push(body[j].text.clone());
                            }
                        }
                    }
                    j += 1;
                }
                guards.push(ids);
                i = j;
            }
            Some(k) if k == "for" || k == "if" || k == "while" => {
                // header/condition: tokens to the `{` at depth 0
                let mut j = i + 1;
                let mut depth = 0usize;
                let mut ids = Vec::new();
                while j < body.len() {
                    match body[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" if depth > 0 => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {
                            if body[j].kind == TokKind::Ident {
                                ids.push(body[j].text.clone());
                            }
                        }
                    }
                    j += 1;
                }
                guards.push(ids);
                i = j;
            }
            _ => i += 1,
        }
    }
    guards
}

/// One pass over a body: calls, allocs, panics, indexes, folds.
fn scan_body(body: &[Tok], guards: &[Vec<String>], parsed: &ParsedFile, ff: &mut FnFacts) {
    let mut i = 0;
    while i < body.len() {
        let Some(t) = body.get(i) else { break };
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let line = t.line;

        // ---- macros: `name!(…)` -------------------------------------
        if is_punct(body, i + 1, '!') && !is_punct(body, i + 2, '=') {
            if PANIC_MACROS.contains(&name) {
                ff.panics.push(SiteFact {
                    line,
                    what: format!("{}!", name),
                });
            }
            if ALLOC_MACROS.contains(&name) {
                ff.allocs.push(SiteFact {
                    line,
                    what: format!("{}!", name),
                });
            }
            i += 2;
            continue;
        }

        // ---- `for` loops: float-fold analysis -----------------------
        if name == "for" {
            if let Some(fold_end) = scan_for_loop(body, i, ff) {
                // Calls inside the header and body still need recording;
                // only advance past the `for` keyword itself.
                let _ = fold_end;
            }
            i += 1;
            continue;
        }

        if KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }

        // ---- subscript: `name[…]` -----------------------------------
        if is_punct(body, i + 1, '[') && !prev_is_expr_end(body, i) {
            let (sub_ident, sub_literal, sub_end) = subscript_info(body, i + 1);
            // `xs[..]` full-range and `name` in type position are filtered
            // by `sub_end` / slicing detection inside subscript_info.
            if let Some((recv, is_index)) = (sub_end > i + 2).then_some((name, true)) {
                if is_index && !sub_literal.1 {
                    let guarded = guards.iter().any(|g| {
                        g.iter().any(|id| id == recv)
                            && (sub_literal.0
                                || sub_ident
                                    .as_ref()
                                    .is_none_or(|s| g.iter().any(|id| id == s)))
                    });
                    ff.indexes.push(IndexFact {
                        line,
                        recv: recv.to_string(),
                        guarded,
                    });
                }
            }
            i += 1;
            continue;
        }

        // ---- method calls: `.name(` / `.name::<…>(` -----------------
        if i > 0 && is_punct(body, i - 1, '.') {
            let is_call = is_punct(body, i + 1, '(')
                || (is_punct(body, i + 1, ':')
                    && is_punct(body, i + 2, ':')
                    && is_punct(body, i + 3, '<'));
            if is_call {
                let recv = receiver_of(body, i - 1);
                if ALLOC_METHODS.contains(&name) {
                    ff.allocs.push(SiteFact {
                        line,
                        what: format!(".{}()", name),
                    });
                }
                if PANIC_METHODS.contains(&name) {
                    ff.panics.push(SiteFact {
                        line,
                        what: format!(".{}()", name),
                    });
                }
                ff.calls.push(CallFact {
                    line,
                    callee: Callee::Method {
                        recv,
                        name: name.to_string(),
                    },
                });
            }
            i += 1;
            continue;
        }

        // ---- free / path calls: `a::b::c(` --------------------------
        if is_punct(body, i + 1, ':') && is_punct(body, i + 2, ':') {
            // Collect the full path from here; only record if it ends in a
            // call. (Walking forward from the first segment keeps `a::b::c(`
            // from also matching at `c`.)
            if i > 1 && is_punct(body, i - 1, ':') && is_punct(body, i - 2, ':') {
                i += 1; // mid-path segment; handled from the path head
                continue;
            }
            let mut segs = vec![name.to_string()];
            let mut j = i + 1;
            while is_punct(body, j, ':') && is_punct(body, j + 1, ':') {
                if let Some(seg) = ident_at(body, j + 2) {
                    segs.push(seg.to_string());
                    j += 3;
                } else if is_punct(body, j + 2, '<') {
                    // turbofish: `path::<T>(…)` — call of the path so far
                    break;
                } else {
                    break;
                }
            }
            let is_call = is_punct(body, j, '(')
                || (is_punct(body, j, ':')
                    && is_punct(body, j + 1, ':')
                    && is_punct(body, j + 2, '<'));
            if is_call && segs.len() >= 2 {
                if let [ty, m] = &segs[segs.len() - 2..] {
                    if ALLOC_PATHS.iter().any(|(t, mm)| t == ty && mm == m) {
                        ff.allocs.push(SiteFact {
                            line,
                            what: format!("{}::{}", ty, m),
                        });
                    }
                }
                ff.calls.push(CallFact {
                    line,
                    callee: Callee::Free(segs),
                });
            }
            i = j.max(i + 1);
            continue;
        }

        // ---- bare calls: `foo(` -------------------------------------
        if is_punct(body, i + 1, '(') {
            let declared_here = i > 0 && ident_at(body, i - 1) == Some("fn");
            if !declared_here {
                // Skip locally-declared closure invocations? A closure call
                // looks identical; the graph simply fails to resolve it.
                ff.calls.push(CallFact {
                    line,
                    callee: Callee::Free(vec![name.to_string()]),
                });
                // Bare alloc constructors don't exist (Vec::new is a path);
                // nothing more to record.
            }
            i += 1;
            continue;
        }

        let _ = parsed;
        i += 1;
    }
}

/// True when the token before `i` ends an expression (so `name[` at `i` is
/// actually `…)name[`? — no: this guards against `].name[` chains where the
/// subscript receiver is not the simple `name`).
fn prev_is_expr_end(body: &[Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = &body[i - 1];
    // `.field[` chains: receiver is the chain, still attribute the index to
    // the field name — so a preceding `.` does NOT disqualify.
    p.kind == TokKind::Punct && matches!(p.text.as_str(), ")" | "]")
}

/// Examines a subscript starting at `open` (the `[`): returns the first
/// identifier inside, whether it is (empty-or-literal, slicing), and the
/// index of the closing `]`.
fn subscript_info(body: &[Tok], open: usize) -> (Option<String>, (bool, bool), usize) {
    let mut depth = 0usize;
    let mut j = open;
    let mut first_ident = None;
    let mut all_literal = true;
    let mut slicing = false;
    while j < body.len() {
        match body[j].text.as_str() {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                let t = &body[j];
                if t.kind == TokKind::Ident && first_ident.is_none() {
                    first_ident = Some(t.text.clone());
                }
                if t.kind != TokKind::Number && !(t.kind == TokKind::Punct) {
                    all_literal = false;
                }
                if depth == 1
                    && t.kind == TokKind::Punct
                    && t.text == "."
                    && is_punct(body, j + 1, '.')
                {
                    slicing = true;
                }
            }
        }
        j += 1;
    }
    if first_ident.is_some() {
        all_literal = false;
    }
    (first_ident, (all_literal, slicing), j)
}

/// Classifies a method call's receiver from the `.` at `dot`.
fn receiver_of(body: &[Tok], dot: usize) -> Recv {
    if dot == 0 {
        return Recv::Other;
    }
    let r = &body[dot - 1];
    match r.kind {
        TokKind::Ident => {
            if r.text == "self" {
                Recv::SelfRecv
            } else if dot >= 2 && is_punct(body, dot - 2, '.') {
                Recv::Field(r.text.clone())
            } else if dot >= 2 && is_punct(body, dot - 2, ']') {
                Recv::Other
            } else {
                Recv::Ident(r.text.clone())
            }
        }
        TokKind::Punct if r.text == ")" || r.text == "]" => Recv::Other,
        _ => Recv::Other,
    }
}

/// Parses a `for` loop header at `i` (the `for` keyword) and records float
/// `+=` folds in its body. Returns the body's end index when parsed.
fn scan_for_loop(body: &[Tok], i: usize, ff: &mut FnFacts) -> Option<usize> {
    let loop_line = body[i].line;
    // pattern: tokens to `in` at depth 0
    let mut j = i + 1;
    let mut depth = 0usize;
    while j < body.len() {
        match body[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" if depth > 0 => depth -= 1,
            "in" if depth == 0 && body[j].kind == TokKind::Ident => break,
            "{" if depth == 0 => return None, // not a for-in we understand
            _ => {}
        }
        j += 1;
    }
    if j >= body.len() {
        return None;
    }
    // iterated expression: tokens to `{` at depth 0
    let iter_lo = j + 1;
    let mut k = iter_lo;
    let mut depth = 0usize;
    while k < body.len() {
        match body[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" if depth > 0 => depth -= 1,
            "{" if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= body.len() {
        return None;
    }
    let iter_toks = &body[iter_lo..k];
    // loop body: balanced braces from k
    let body_lo = k;
    let mut depth = 0usize;
    let mut end = k;
    while end < body.len() {
        match body[end].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        end += 1;
    }
    let loop_body = &body[body_lo..=end.min(body.len() - 1)];
    // find `acc += …` at any depth within the loop body
    let mut m = 1;
    while m + 1 < loop_body.len() {
        if is_punct(loop_body, m, '+') && is_punct(loop_body, m + 1, '=') {
            if let Some(acc) = acc_root(loop_body, m) {
                let (root, chain) = classify_iter(iter_toks);
                ff.folds.push(FoldFact {
                    line: loop_body[m].line,
                    loop_line,
                    acc,
                    root,
                    chain,
                });
            }
        }
        m += 1;
    }
    Some(end)
}

/// Walks back from a `+=` at `plus` to the accumulator's root name:
/// `sum +=`, `acc[i] +=`, `self.loss +=`, `grads.b[i] +=`.
fn acc_root(body: &[Tok], plus: usize) -> Option<String> {
    let mut j = plus;
    // skip back over one `[…]` subscript
    if j >= 1 && is_punct(body, j - 1, ']') {
        let mut depth = 0usize;
        while j > 0 {
            j -= 1;
            match body[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let name = ident_at(body, j.checked_sub(1)?)?;
    Some(name.to_string())
}

/// Splits an iterated expression into its root and adapter-chain method
/// names: `&xs` → `(Ident(xs), [])`; `xs.iter().zip(&ys)` →
/// `(Ident(xs), [iter, zip])`; `self.rows.values()` →
/// `(Field(rows), [values])`; `0..n` → `(Range, [])`; `make(n)` →
/// `(Call([make]), [])`.
pub fn classify_iter(toks: &[Tok]) -> (IterRoot, Vec<String>) {
    let mut toks = toks;
    // strip leading `&`/`&mut` and fully-enclosing parens
    while let Some(t) = toks.first() {
        if (t.kind == TokKind::Punct && t.text == "&")
            || (t.kind == TokKind::Ident && t.text == "mut")
        {
            toks = &toks[1..];
        } else if t.kind == TokKind::Punct && t.text == "(" && encloses(toks) {
            toks = &toks[1..toks.len() - 1];
        } else {
            break;
        }
    }
    if toks.is_empty() {
        return (IterRoot::Other, Vec::new());
    }
    // range? a `..` at depth 0
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" if depth > 0 => depth -= 1,
            "." if depth == 0 && toks.get(j + 1).is_some_and(|n| n.text == ".") => {
                return (IterRoot::Range, Vec::new());
            }
            _ => {}
        }
    }
    // root
    let first = &toks[0];
    let (mut root, mut j) = if first.kind == TokKind::Ident {
        if first.text == "self"
            && toks.get(1).is_some_and(|t| t.text == ".")
            && toks.get(2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            (IterRoot::Field(toks[2].text.clone()), 3usize)
        } else {
            // path? `a::b::f(`
            let mut segs = vec![first.text.clone()];
            let mut k = 1usize;
            while toks.get(k).is_some_and(|t| t.text == ":")
                && toks.get(k + 1).is_some_and(|t| t.text == ":")
                && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                segs.push(toks[k + 2].text.clone());
                k += 3;
            }
            if toks.get(k).is_some_and(|t| t.text == "(") {
                (IterRoot::Call(segs), k)
            } else {
                (IterRoot::Ident(first.text.clone()), 1usize)
            }
        }
    } else {
        (IterRoot::Other, 0usize)
    };
    // skip the call's argument group if root is a call
    if matches!(root, IterRoot::Call(_)) {
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // adapter chain: `.name(…)` and `.field` hops
    let mut chain = Vec::new();
    let mut depth = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" => {
                depth += 1;
                j += 1;
            }
            ")" | "]" => {
                depth = depth.saturating_sub(1);
                j += 1;
            }
            "." if depth == 0 => {
                if let Some(name) = ident_at(toks, j + 1) {
                    let is_call = toks.get(j + 2).is_some_and(|t| t.text == "(")
                        || (toks.get(j + 2).is_some_and(|t| t.text == ":")
                            && toks.get(j + 3).is_some_and(|t| t.text == ":"));
                    if is_call {
                        chain.push(name.to_string());
                    } else {
                        // field hop: re-root on the deepest field
                        root = IterRoot::Field(name.to_string());
                        chain.clear();
                    }
                    j += 2;
                } else {
                    j += 1;
                }
            }
            _ => {
                j += 1;
            }
        }
    }
    (root, chain)
}

fn encloses(toks: &[Tok]) -> bool {
    if toks.last().map(|t| t.text.as_str()) != Some(")") {
        return false;
    }
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j == toks.len() - 1;
                }
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn facts_of(src: &str) -> (ParsedFile, FileFacts) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let facts = extract(&lexed, &parsed);
        (parsed, facts)
    }

    #[test]
    fn calls_free_path_and_method() {
        let (_, f) = facts_of(
            "fn a(xs: &[f32]) { helper(); ml::par::par_map(xs, id); \
             self.step(); buf.push(1); self.gap.finish(); Vec::new(); }",
        );
        let calls = &f.fns[0].calls;
        let has = |c: &Callee| calls.iter().any(|cf| &cf.callee == c);
        assert!(has(&Callee::Free(vec!["helper".into()])));
        assert!(has(&Callee::Free(vec![
            "ml".into(),
            "par".into(),
            "par_map".into()
        ])));
        assert!(has(&Callee::Method {
            recv: Recv::SelfRecv,
            name: "step".into()
        }));
        assert!(has(&Callee::Method {
            recv: Recv::Ident("buf".into()),
            name: "push".into()
        }));
        assert!(has(&Callee::Method {
            recv: Recv::Field("gap".into()),
            name: "finish".into()
        }));
    }

    #[test]
    fn alloc_sites_cover_the_a1_ban_list() {
        let (_, f) = facts_of(
            "fn a() { let v = Vec::new(); let b = Box::new(0); \
             let s = format!(\"x\"); let t = xs.to_vec(); \
             let c: Vec<u8> = it.collect(); let w = vec![0; 4]; }",
        );
        let whats: Vec<&str> = f.fns[0].allocs.iter().map(|s| s.what.as_str()).collect();
        for want in [
            "Vec::new",
            "Box::new",
            "format!",
            ".to_vec()",
            ".collect()",
            "vec!",
        ] {
            assert!(whats.contains(&want), "missing {want} in {whats:?}");
        }
    }

    #[test]
    fn collect_turbofish_is_still_an_alloc() {
        let (_, f) = facts_of("fn a() { let v = it.collect::<Vec<_>>(); }");
        assert!(f.fns[0].allocs.iter().any(|s| s.what == ".collect()"));
    }

    #[test]
    fn panic_sites_ban_unwrap_expect_and_macros_but_not_asserts() {
        let (_, f) = facts_of(
            "fn a() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); \
             unreachable!(); assert!(n > 0); debug_assert_eq!(a, b); \
             z.unwrap_or(0); z.unwrap_or_else(|| 0); }",
        );
        let whats: Vec<&str> = f.fns[0].panics.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(
            whats,
            vec![".unwrap()", ".expect()", "panic!", "unreachable!"]
        );
    }

    #[test]
    fn index_guardedness_sees_asserts_and_for_headers() {
        let (_, f) = facts_of(
            "fn guarded(xs: &[f32], n: usize) { assert!(n < xs.len()); let v = xs[n]; }\n\
             fn looped(xs: &[f32]) { for i in 0..xs.len() { let v = xs[i]; } }\n\
             fn naked(xs: &[f32], n: usize) { let v = xs[n]; }",
        );
        assert!(f.fns[0].indexes[0].guarded, "assert! guards");
        assert!(f.fns[1].indexes[0].guarded, "for-header guards");
        assert!(!f.fns[2].indexes[0].guarded, "no guard in body");
    }

    #[test]
    fn float_folds_classify_roots_and_chains() {
        let (_, f) = facts_of(
            "fn a(xs: &[f32], m: &HashMap<u32, f32>) -> f32 {\n\
                 let mut sum = 0.0;\n\
                 for &x in xs { sum += x; }\n\
                 for i in 0..4 { sum += xs[i]; }\n\
                 for v in m.values() { sum += v; }\n\
                 for r in make_rows() { sum += r; }\n\
                 sum\n\
             }",
        );
        let folds = &f.fns[0].folds;
        assert_eq!(folds.len(), 4);
        assert_eq!(folds[0].root, IterRoot::Ident("xs".into()));
        assert!(folds[0].chain.is_empty());
        assert_eq!(folds[1].root, IterRoot::Range);
        assert_eq!(folds[2].root, IterRoot::Ident("m".into()));
        assert_eq!(folds[2].chain, vec!["values".to_string()]);
        assert_eq!(folds[3].root, IterRoot::Call(vec!["make_rows".into()]));
    }

    #[test]
    fn bindings_from_params_lets_and_inference() {
        let (_, f) = facts_of(
            "fn a(xs: &[f32], n: usize) { let mut acc: Vec<f32> = Vec::new(); \
             let pool = WorkspacePool::new(4); let s = 0.5; }",
        );
        let b = &f.fns[0].bindings;
        assert_eq!(b.get("xs").unwrap(), "& [ f32 ]");
        assert_eq!(b.get("n").unwrap(), "usize");
        assert!(b.get("acc").unwrap().starts_with("Vec"));
        assert_eq!(b.get("pool").unwrap(), "WorkspacePool");
        assert_eq!(b.get("s").unwrap(), "f64", "float-literal init inferred");
    }
}
