//! Deterministic workspace walker.
//!
//! Collects every `.rs` file under the configured include roots, skipping
//! excluded prefixes, and returns workspace-relative `/`-separated paths in
//! sorted order — the linter's own report order must never depend on
//! readdir order.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;

/// Returns sorted workspace-relative paths of all lintable `.rs` files.
pub fn rust_files(root: &Path, config: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for include in &config.include {
        let dir = root.join(include);
        if dir.is_dir() {
            collect(root, &dir, config, &mut out)?;
        } else if dir.is_file() && include.ends_with(".rs") {
            push_rel(root, &dir, config, &mut out);
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, config: &Config, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        if config.exclude.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        if path.is_dir() {
            // Never descend into build output, whatever the config says.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect(root, &path, config, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn push_rel(root: &Path, path: &Path, config: &Config, out: &mut Vec<String>) {
    if let Some(rel) = relative(root, path) {
        if !config.exclude.iter().any(|p| rel.starts_with(p.as_str())) {
            out.push(rel);
        }
    }
}

/// `root`-relative `/`-separated form of `path`.
fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for part in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&part.as_os_str().to_string_lossy());
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_own_crate_sorted_and_skips_fixtures() {
        // The lint crate's own sources are a convenient live tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let config = Config {
            include: vec!["src".into(), "tests".into()],
            exclude: vec!["tests/fixtures".into()],
            rules: Default::default(),
        };
        let files = rust_files(root, &config).expect("walk");
        assert!(files.iter().any(|f| f == "src/lexer.rs"));
        assert!(files.iter().all(|f| !f.starts_with("tests/fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
