//! The inter-procedural rule families (A1–A4).
//!
//! These rules consume the per-file facts ([`crate::facts`]) joined through
//! the workspace call graph ([`crate::graph`]); policy (roots, scoping,
//! severities) comes from `lint.toml`. Reachability semantics: a site in
//! function `f` fires when `f` is reachable from a configured root over
//! resolved call edges, test code excluded. The diagnostic names the root
//! so the reader can see *why* the function is hot/serving.
//!
//! * **A1 `hot-path-allocation`** — no allocation (`Vec::new`, `vec!`,
//!   `.to_vec()`, `.clone()`, `.collect()`, `Box::new`, format-alloc)
//!   reachable from the configured hot-path roots (the `_into` kernels and
//!   the training epoch loop). Steady-state training/extraction reuses
//!   workspaces; an allocation on this path is either a leak of that
//!   contract or needs a written waiver.
//! * **A2 `panic-free-serving`** — no `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` reachable from the serving
//!   roots (`run_fleet`, the `AttackStream` round). The fleet degrades
//!   instead of aborting. The `assert!` family is allowed: dimension
//!   asserts are call-site contract checks and `debug_assert!` compiles out
//!   of release serving builds. Unguarded indexing is additionally checked,
//!   but only in the serving modules themselves (`index_paths`) — ml
//!   kernels index by loop bounds by construction (documented non-goal).
//! * **A3 `float-reduction-order`** — f32/f64 `+=` folds inside `for`
//!   loops whose iteration order is not provably fixed. Slices, arrays,
//!   `Vec`, ranges and BTree collections pass; hash collections, map
//!   `keys()`/`values()` not provably BTree, and opaque call/adapter
//!   sources must either be fixed or carry `// lint: sorted`. Subsumes and
//!   deepens D7 (which only sees `.sum()` near `par_map`).
//! * **A4 `threshold-confinement`** — every `MIN_PARALLEL_*` work-size
//!   gate lives in `ml::par::thresholds` (the blessed path from the
//!   config's `allow`, *and* the parser-verified enclosing module must be
//!   named `thresholds`). Scattered gates are impossible to audit or
//!   retune together.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::facts::{Callee, FoldFact, IterRoot};
use crate::graph::{module_path, FileUnit, Graph};
use crate::rules::Waivers;

/// One semantic rule's identity, for `--explain` and SARIF metadata.
pub struct SemRuleDef {
    pub id: &'static str,
    pub name: &'static str,
    pub explain: &'static str,
}

/// All semantic rules, in report order.
pub const SEM_RULES: &[SemRuleDef] = &[
    SemRuleDef {
        id: "A1",
        name: "hot-path-allocation",
        explain: "An allocation (`Vec::new`, `vec!`, `.to_vec()`, `.clone()`, \
                  `.collect()`, `Box::new`, `format!`, `String::new/from`, \
                  `.to_string()`, `.to_owned()`, `Vec::with_capacity`) is reachable \
                  from a hot-path root (lint.toml `rules.A1.roots`: the `_into` \
                  kernels and the training epoch loop). The steady-state hot loops \
                  reuse pre-sized workspaces; fix by hoisting the allocation into a \
                  workspace/pool acquire, or waive the line with `// lint: allow(A1)` \
                  plus a written justification (e.g. pool warm-up on first acquire).",
    },
    SemRuleDef {
        id: "A2",
        name: "panic-free-serving",
        explain: "A panic site (`unwrap`, `expect`, `panic!`, `unreachable!`, `todo!`, \
                  `unimplemented!`) — or, inside the serving modules listed in \
                  `rules.A2.index_paths`, an unguarded `x[i]` — is reachable from a \
                  serving root (`run_fleet`, the `AttackStream` round). The fleet \
                  degrades instead of aborting: fix with `let … else { continue }` \
                  defensive degradation or a `debug_assert!`; the `assert!` family is \
                  allowed (call-site contract checks). Waive with `// lint: allow(A2)` \
                  plus a justification when the invariant is locally provable.",
    },
    SemRuleDef {
        id: "A3",
        name: "float-reduction-order",
        explain: "A float `+=` fold iterates a source whose order is not provably \
                  fixed. Float addition is non-associative, so any order change is a \
                  bitwise result change. Slices, arrays, `Vec`, ranges and BTree \
                  collections pass; HashMap/HashSet iteration, `keys()`/`values()` on \
                  a map not provably BTree, and opaque call/adapter sources fail. Fix \
                  by folding over an order-fixed container, or waive with \
                  `// lint: sorted` when order is re-established upstream.",
    },
    SemRuleDef {
        id: "A4",
        name: "threshold-confinement",
        explain: "A `MIN_PARALLEL_*` work-size gate is declared outside \
                  `ml::par::thresholds`. All fan-out gates live in that one audited \
                  module (with tuning provenance and unit tests) so they can be \
                  retuned together; re-export from the historical path if call sites \
                  want a local name.",
    },
];

/// Explain text for any rule id (`D*` or `A*`), if known.
pub fn explain(id: &str) -> Option<(&'static str, &'static str)> {
    if let Some(r) = crate::rules::RULES.iter().find(|r| r.id == id) {
        return Some((r.name, r.explain));
    }
    SEM_RULES
        .iter()
        .find(|r| r.id == id)
        .map(|r| (r.name, r.explain))
}

/// Adapter methods that preserve their source's iteration order.
const ORDER_PRESERVING: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "enumerate",
    "zip",
    "rev",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "chain",
    "take",
    "skip",
    "step_by",
    "chunks",
    "chunks_mut",
    "chunks_exact",
    "chunks_exact_mut",
    "windows",
    "copied",
    "cloned",
    "by_ref",
    "take_while",
    "skip_while",
    "as_slice",
    "as_ref",
    "as_bytes",
    "split_at",
    "split_first",
    "split_last",
    "lines",
    "bytes",
    "chars",
    "to_vec",
    "drain",
    "get",
    "split_whitespace",
];

/// Map accessors that observe the map's iteration order.
const MAP_ORDER: &[&str] = &["keys", "values", "values_mut", "into_keys", "into_values"];

/// Container mentions that prove a fixed iteration order.
const FIXED_CONTAINERS: &[&str] = &[
    "Vec", "VecDeque", "[", "BTreeMap", "BTreeSet", "Range", "Matrix", "Chunks", "Windows",
    "slice", "array", "String", "str",
];

fn mentions_any(ty: &str, names: &[&str]) -> bool {
    ty.split_whitespace().any(|w| names.contains(&w))
        || names.iter().any(|n| *n == "[" && ty.contains('['))
}

fn is_fixed_container(ty: &str) -> bool {
    mentions_any(ty, FIXED_CONTAINERS)
}

fn is_hashed(ty: &str) -> bool {
    mentions_any(ty, &["HashMap", "HashSet"])
}

/// Runs A1–A4 over the analyzed workspace.
pub fn check(
    units: &[FileUnit],
    waivers: &[Waivers],
    graph: &Graph,
    crate_dirs: &BTreeMap<String, String>,
    config: &Config,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // node lookup by (file, fn) for per-fn rules
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        node_of.insert((node.file, node.fn_idx), n);
    }

    check_reachability_rule(
        "A1",
        "hot-path-allocation",
        units,
        waivers,
        graph,
        config,
        &mut diags,
        |facts| &facts.allocs,
        |what, id, root| {
            format!(
                "allocation `{}` on the hot path: `{}` is reachable from root `{}`; \
                 the steady-state loops reuse workspaces — hoist the allocation or \
                 waive with a written justification",
                what, id, root
            )
        },
    );

    check_reachability_rule(
        "A2",
        "panic-free-serving",
        units,
        waivers,
        graph,
        config,
        &mut diags,
        |facts| &facts.panics,
        |what, id, root| {
            format!(
                "panic site `{}` on the serving path: `{}` is reachable from root \
                 `{}`; the fleet degrades instead of aborting — use defensive \
                 degradation (`let … else`) or `debug_assert!`",
                what, id, root
            )
        },
    );

    // A2's indexing check, confined to the serving modules.
    let rc2 = config.rule("A2");
    if let (Some(severity), false) = (rc2.severity, rc2.roots.is_empty()) {
        let roots: Vec<usize> = rc2
            .roots
            .iter()
            .flat_map(|p| graph.match_pattern(p))
            .collect();
        let reach = graph.reachable_from(&roots);
        for (n, node) in graph.nodes.iter().enumerate() {
            let Some(root) = reach[n] else { continue };
            let unit = &units[node.file];
            if !rc2
                .index_paths
                .iter()
                .any(|p| unit.rel.starts_with(p.as_str()))
            {
                continue;
            }
            if !rc2.applies_to(&unit.rel) {
                continue;
            }
            for idx in &unit.facts.fns[node.fn_idx].indexes {
                if idx.guarded || waivers[node.file].allowed(idx.line, "A2") {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: "A2",
                    name: "panic-free-serving",
                    severity,
                    path: unit.rel.clone(),
                    line: idx.line,
                    message: format!(
                        "unguarded index `{}[…]` in `{}` (reachable from `{}`); a \
                         malformed session must degrade, not abort — guard with an \
                         assert/bounds check or use `get`",
                        idx.recv, node.id, graph.nodes[root].id
                    ),
                });
            }
        }
    }

    check_a3(
        units, waivers, graph, &node_of, crate_dirs, config, &mut diags,
    );
    check_a4(units, waivers, crate_dirs, config, &mut diags);

    crate::diag::sort(&mut diags);
    diags
}

/// Shared driver for A1/A2: ban `site_list` in everything reachable from
/// the rule's roots.
#[allow(clippy::too_many_arguments)]
fn check_reachability_rule(
    id: &'static str,
    name: &'static str,
    units: &[FileUnit],
    waivers: &[Waivers],
    graph: &Graph,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
    site_list: fn(&crate::facts::FnFacts) -> &Vec<crate::facts::SiteFact>,
    message: fn(&str, &str, &str) -> String,
) {
    let rc = config.rule(id);
    let Some(severity) = rc.severity else { return };
    if rc.roots.is_empty() {
        return;
    }
    let roots: Vec<usize> = rc
        .roots
        .iter()
        .flat_map(|p| graph.match_pattern(p))
        .collect();
    let reach = graph.reachable_from(&roots);
    for (n, node) in graph.nodes.iter().enumerate() {
        let Some(root) = reach[n] else { continue };
        let unit = &units[node.file];
        if !rc.applies_to(&unit.rel) {
            continue;
        }
        for site in site_list(&unit.facts.fns[node.fn_idx]) {
            if waivers[node.file].allowed(site.line, id) {
                continue;
            }
            diags.push(Diagnostic {
                rule: id,
                name,
                severity,
                path: unit.rel.clone(),
                line: site.line,
                message: message(&site.what, &node.id, &graph.nodes[root].id),
            });
        }
    }
}

/// A3: float `+=` folds over sources whose order is not provably fixed.
#[allow(clippy::too_many_arguments)]
fn check_a3(
    units: &[FileUnit],
    waivers: &[Waivers],
    graph: &Graph,
    node_of: &BTreeMap<(usize, usize), usize>,
    crate_dirs: &BTreeMap<String, String>,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
) {
    let rc = config.rule("A3");
    let Some(severity) = rc.severity else { return };
    for (fi, unit) in units.iter().enumerate() {
        if !rc.applies_to(&unit.rel) {
            continue;
        }
        let base = module_path(&unit.rel, crate_dirs);
        for (fj, f) in unit.parsed.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut module = base.clone();
            module.extend(f.module.iter().cloned());
            let facts = &unit.facts.fns[fj];
            for fold in &facts.folds {
                // Only folds whose accumulator is provably float.
                let acc_ty = facts
                    .bindings
                    .get(&fold.acc)
                    .cloned()
                    .or_else(|| graph.field_roots(&fold.acc).map(join_roots));
                let is_float = acc_ty
                    .as_deref()
                    .is_some_and(|t| mentions_any(t, &["f32", "f64"]));
                if !is_float {
                    continue;
                }
                if waivers[fi].sorted_at(fold.line)
                    || waivers[fi].sorted_at(fold.loop_line)
                    || waivers[fi].allowed(fold.line, "A3")
                    || waivers[fi].allowed(fold.loop_line, "A3")
                {
                    continue;
                }
                let node = node_of.get(&(fi, fj)).map(|&n| &graph.nodes[n]);
                if let Some(problem) = classify_fold(unit, node, &module, graph, facts, fold) {
                    diags.push(Diagnostic {
                        rule: "A3",
                        name: "float-reduction-order",
                        severity,
                        path: unit.rel.clone(),
                        line: fold.line,
                        message: format!(
                            "float fold `{} += …` over {}; float addition is \
                             non-associative — iterate an order-fixed container or \
                             waive with `// lint: sorted`",
                            fold.acc, problem
                        ),
                    });
                }
            }
        }
    }
}

fn join_roots(roots: &std::collections::BTreeSet<String>) -> String {
    roots.iter().cloned().collect::<Vec<_>>().join(" ")
}

/// Returns a problem description when the fold's source order is not
/// provably fixed; `None` when the fold passes.
fn classify_fold(
    unit: &FileUnit,
    node: Option<&crate::graph::FnNode>,
    module: &[String],
    graph: &Graph,
    facts: &crate::facts::FnFacts,
    fold: &FoldFact,
) -> Option<String> {
    // Source type text, when the root is a binding/field/call.
    let src_ty: Option<String> = match &fold.root {
        IterRoot::Range => return None,
        IterRoot::Ident(x) => facts
            .bindings
            .get(x)
            .cloned()
            .or_else(|| graph.field_roots(x).map(join_roots)),
        IterRoot::Field(f) => graph.field_roots(f).map(join_roots),
        IterRoot::Call(segs) => {
            let node = node?;
            let use_map: BTreeMap<&str, &[String]> = unit
                .parsed
                .uses
                .iter()
                .map(|u| (u.alias.as_str(), u.path.as_slice()))
                .collect();
            match graph.ret_of_call(node, module, &use_map, facts, &Callee::Free(segs.clone())) {
                Some(ret) if is_fixed_container(&ret) => Some(ret),
                Some(ret) => {
                    return Some(format!(
                        "the result of `{}()` (returns `{}`, order not provably fixed)",
                        segs.join("::"),
                        ret
                    ))
                }
                None => {
                    return Some(format!(
                        "the result of `{}()` (unresolved callee — order unknown)",
                        segs.join("::")
                    ))
                }
            }
        }
        IterRoot::Other => None,
    };

    if let Some(ty) = &src_ty {
        if is_hashed(ty) {
            return Some(format!(
                "a HashMap/HashSet source (`{}`) — iteration order depends on hash state",
                ty
            ));
        }
    }

    for m in &fold.chain {
        if MAP_ORDER.contains(&m.as_str()) {
            let btree_proven = src_ty
                .as_deref()
                .is_some_and(|t| mentions_any(t, &["BTreeMap", "BTreeSet"]));
            if !btree_proven {
                return Some(format!(
                    "`.{}()` on a map whose type is not provably BTree-ordered",
                    m
                ));
            }
            continue;
        }
        if ORDER_PRESERVING.contains(&m.as_str()) {
            continue;
        }
        // Unknown adapter: a unique workspace method with a fixed-container
        // return type passes; anything else is unprovable.
        let rets = graph.method_rets(m);
        match rets.as_slice() {
            [one] if is_fixed_container(one) => continue,
            _ => {
                return Some(format!(
                    "adapter `.{}()` whose iteration order cannot be proven",
                    m
                ))
            }
        }
    }
    None
}

/// A4: `MIN_PARALLEL_*` gates must live in `ml::par::thresholds`.
fn check_a4(
    units: &[FileUnit],
    waivers: &[Waivers],
    crate_dirs: &BTreeMap<String, String>,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
) {
    let rc = config.rule("A4");
    let Some(severity) = rc.severity else { return };
    for (fi, unit) in units.iter().enumerate() {
        let blessed_path = rc.allow.iter().any(|p| unit.rel.starts_with(p.as_str()));
        let file_mod = module_path(&unit.rel, crate_dirs);
        let file_is_thresholds = file_mod.last().is_some_and(|m| m == "thresholds");
        for c in &unit.parsed.consts {
            if !c.name.starts_with("MIN_PARALLEL_") {
                continue;
            }
            let inline_thresholds = c.module.last().is_some_and(|m| m == "thresholds");
            if blessed_path && (file_is_thresholds || inline_thresholds) {
                continue;
            }
            if waivers[fi].allowed(c.line, "A4") {
                continue;
            }
            diags.push(Diagnostic {
                rule: "A4",
                name: "threshold-confinement",
                severity,
                path: unit.rel.clone(),
                line: c.line,
                message: format!(
                    "work-size gate `{}` declared outside `ml::par::thresholds`; all \
                     `MIN_PARALLEL_*` gates live in the audited thresholds module — \
                     move it there and re-export if call sites want a local path",
                    c.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules::Waivers;

    fn analyze(rel: &str, src: &str) -> (FileUnit, Waivers) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let facts = extract(&lexed, &parsed);
        let w = Waivers::harvest(&lexed);
        (
            FileUnit {
                rel: rel.to_string(),
                parsed,
                facts,
            },
            w,
        )
    }

    fn dirs() -> BTreeMap<String, String> {
        [("crates/ml".to_string(), "ml".to_string())]
            .into_iter()
            .collect()
    }

    fn run_rules(files: Vec<(FileUnit, Waivers)>, toml: &str) -> Vec<String> {
        let config = Config::parse(toml).expect("config");
        let (units, waivers): (Vec<_>, Vec<_>) = files.into_iter().unzip();
        let graph = Graph::build(&units, &dirs());
        check(&units, &waivers, &graph, &dirs(), &config)
            .into_iter()
            .map(|d| format!("{}:{} {}", d.rule, d.line, d.message))
            .collect()
    }

    #[test]
    fn a1_fires_transitively_and_honours_waivers() {
        let src = "pub fn gemm_into(c: &mut [f32]) { helper(c); }\n\
                   fn helper(c: &mut [f32]) { let v = c.to_vec(); keep(v); }\n\
                   fn cold() { let v: Vec<f32> = Vec::new(); keep2(v); }\n";
        let out = run_rules(
            vec![analyze("crates/ml/src/matrix.rs", src)],
            "[rules.A1]\nseverity = \"error\"\nroots = [\"ml::*_into\"]\n",
        );
        assert_eq!(out.len(), 1, "only the reachable alloc fires: {out:?}");
        assert!(out[0].starts_with("A1:2"));
        assert!(out[0].contains("ml::matrix::gemm_into"));

        let waived = "pub fn gemm_into(c: &mut [f32]) { helper(c); }\n\
                      // pool warm-up only. lint: allow(A1)\n\
                      fn helper(c: &mut [f32]) { let v = c.to_vec(); keep(v); }\n";
        let out = run_rules(
            vec![analyze("crates/ml/src/matrix.rs", waived)],
            "[rules.A1]\nseverity = \"error\"\nroots = [\"ml::*_into\"]\n",
        );
        // the waiver comment is on the line above the alloc line
        assert!(out.is_empty(), "waived alloc must not fire: {out:?}");
    }

    #[test]
    fn a2_bans_panics_but_not_asserts_and_checks_serving_indexing() {
        let src = "pub fn run_fleet(n: usize) { assert!(n > 0); step(n); }\n\
                   fn step(n: usize) { let x: Option<u32> = probe(n); let v = x.unwrap(); keep(v); }\n";
        let out = run_rules(
            vec![analyze("crates/ml/src/fleet.rs", src)],
            "[rules.A2]\nseverity = \"error\"\nroots = [\"ml::fleet::run_fleet\"]\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains(".unwrap()"));

        let idx = "pub fn run_fleet(xs: &[f32], n: usize) { let v = xs[n]; keep(v); }\n";
        let out = run_rules(
            vec![analyze("crates/ml/src/fleet.rs", idx)],
            "[rules.A2]\nseverity = \"error\"\nroots = [\"ml::fleet::run_fleet\"]\n\
             index_paths = [\"crates/ml/src/fleet.rs\"]\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("unguarded index"));
    }

    #[test]
    fn a3_passes_fixed_sources_flags_hash_and_opaque() {
        let src = "\
            fn fixed(xs: &[f32]) -> f32 { let mut s = 0.0; for &x in xs { s += x; } s }\n\
            fn hashy(m: &HashMap<u32, f32>) -> f32 { let mut s = 0.0; for (_, v) in m.iter() { s += v; } s }\n\
            fn mapvals(m: &BTreeMap<u32, f32>) -> f32 { let mut s = 0.0; for v in m.values() { s += v; } s }\n\
            fn opaque() -> f32 { let mut s = 0.0; for v in mystery_source() { s += v; } s }\n\
            fn waived() -> f32 { let mut s = 0.0;\n\
                // upstream sort. lint: sorted\n\
                for v in mystery_source() { s += v; } s }\n";
        let out = run_rules(
            vec![analyze("crates/ml/src/x.rs", src)],
            "[rules.A3]\nseverity = \"error\"\n",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("HashMap"), "{out:?}");
        assert!(out[1].contains("mystery_source"), "{out:?}");
    }

    #[test]
    fn a4_confines_gates_to_the_thresholds_module() {
        let bad = "pub const MIN_PARALLEL_ROWS: usize = 64;\n";
        let good = "pub const MIN_PARALLEL_ROWS: usize = 64;\n";
        let toml = "[rules.A4]\nseverity = \"error\"\n\
                    allow = [\"crates/ml/src/par/thresholds.rs\"]\n";
        let out = run_rules(vec![analyze("crates/ml/src/seq.rs", bad)], toml);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("MIN_PARALLEL_ROWS"));
        let out = run_rules(vec![analyze("crates/ml/src/par/thresholds.rs", good)], toml);
        assert!(out.is_empty(), "blessed module is clean: {out:?}");
    }

    #[test]
    fn explain_covers_both_rule_tables() {
        assert!(explain("D2").is_some());
        assert!(explain("A1").is_some());
        assert!(explain("A4").is_some());
        assert!(explain("Z9").is_none());
    }
}
