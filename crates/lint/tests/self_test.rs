//! Self-tests for `leaky-lint`: every rule fires on its `bad/` fixture and
//! stays silent on its `good/` twin, the CLI exit codes match, and — the
//! meta-test the whole PR rides on — the live workspace is clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use lint::config::{Config, Severity};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn load(config_name: &str) -> Config {
    let src = std::fs::read_to_string(fixtures_root().join(config_name)).expect("fixture config");
    Config::parse(&src).expect("fixture config parses")
}

/// Every D-rule must fire at least once on the bad corpus, and each bad
/// fixture must trip exactly the rule it is named for.
#[test]
fn every_rule_fires_on_its_bad_fixture() {
    let diags = lint::run(&fixtures_root(), &load("lint-bad.toml")).expect("lint runs");
    let fired: BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
    let all: BTreeSet<&str> = lint::rules::RULES.iter().map(|r| r.id).collect();
    assert_eq!(fired, all, "rules that never fired are untested");

    for d in &diags {
        let file = d.path.rsplit('/').next().unwrap();
        let expected_prefix = d.rule.to_lowercase(); // "d2" from "D2"
        assert!(
            file.starts_with(&expected_prefix),
            "{} fired on {} — cross-contaminated fixture (message: {})",
            d.rule,
            d.path,
            d.message
        );
        assert_eq!(d.severity, Severity::Error);
    }
}

/// The good corpus — including the `// lint: sorted` waiver and the
/// SAFETY-comment-in-allowlisted-file case — produces no findings at all.
#[test]
fn good_fixtures_are_clean() {
    let diags = lint::run(&fixtures_root(), &load("lint-good.toml")).expect("lint runs");
    assert!(
        diags.is_empty(),
        "good fixtures flagged: {:#?}",
        diags
            .iter()
            .map(|d| format!("{} {}:{} {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
    );
}

/// The CLI contract CI relies on: non-zero + populated JSON on bad input,
/// zero + empty diagnostics on good input.
#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_leaky-lint");
    let root = fixtures_root();

    let bad = Command::new(bin)
        .args(["--json", "--root"])
        .arg(&root)
        .arg("--config")
        .arg(root.join("lint-bad.toml"))
        .output()
        .expect("spawn leaky-lint");
    assert_eq!(bad.status.code(), Some(1), "bad corpus must exit 1");
    let json = String::from_utf8(bad.stdout).expect("utf8");
    assert!(
        json.contains("\"rule\":\"D1\""),
        "json lists findings: {}",
        json
    );
    assert!(!json.contains("\"errors\":0"), "error count is non-zero");

    let good = Command::new(bin)
        .args(["--json", "--root"])
        .arg(&root)
        .arg("--config")
        .arg(root.join("lint-good.toml"))
        .output()
        .expect("spawn leaky-lint");
    assert_eq!(good.status.code(), Some(0), "good corpus must exit 0");
    let json = String::from_utf8(good.stdout).expect("utf8");
    assert!(json.contains("\"diagnostics\":[]"), "no findings: {}", json);
    assert!(json.contains("\"errors\":0"));
}

/// Meta-test: the live workspace is clean under the checked-in lint.toml.
/// This is the same invocation the CI `lint` job gates on.
#[test]
fn live_workspace_is_clean() {
    let root = workspace_root();
    let config = lint::load_config(&root).expect("workspace lint.toml parses");
    let diags = lint::run(&root, &config).expect("lint runs");
    let errors: Vec<String> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{} {}:{} {}", d.rule, d.path, d.line, d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has determinism-invariant violations:\n{}",
        errors.join("\n")
    );
}

/// The workspace config keeps all seven rules enabled at error severity —
/// a config edit that silently disables a rule fails here, not in review.
#[test]
fn workspace_config_enables_all_rules() {
    let config = lint::load_config(&workspace_root()).expect("workspace lint.toml parses");
    for rule in lint::rules::RULES {
        assert_eq!(
            config.rule(rule.id).severity,
            Some(Severity::Error),
            "rule {} ({}) must stay at error severity",
            rule.id,
            rule.name
        );
    }
}
