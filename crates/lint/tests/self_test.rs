//! Self-tests for `leaky-lint`: every rule fires on its `bad/` fixture and
//! stays silent on its `good/` twin, the CLI exit codes match, and — the
//! meta-test the whole PR rides on — the live workspace is clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use lint::config::{Config, Severity};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn load(config_name: &str) -> Config {
    let src = std::fs::read_to_string(fixtures_root().join(config_name)).expect("fixture config");
    Config::parse(&src).expect("fixture config parses")
}

/// Every D-rule must fire at least once on the bad corpus, and each bad
/// fixture must trip exactly the rule it is named for.
#[test]
fn every_rule_fires_on_its_bad_fixture() {
    let diags = lint::run(&fixtures_root(), &load("lint-bad.toml")).expect("lint runs");
    let fired: BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
    let all: BTreeSet<&str> = lint::rules::RULES
        .iter()
        .map(|r| r.id)
        .chain(lint::arules::SEM_RULES.iter().map(|r| r.id))
        .collect();
    assert_eq!(fired, all, "rules that never fired are untested");

    for d in &diags {
        let file = d.path.rsplit('/').next().unwrap();
        let expected_prefix = d.rule.to_lowercase(); // "d2" from "D2"
        assert!(
            file.starts_with(&expected_prefix),
            "{} fired on {} — cross-contaminated fixture (message: {})",
            d.rule,
            d.path,
            d.message
        );
        assert_eq!(d.severity, Severity::Error);
    }
}

/// The good corpus — including the `// lint: sorted` waiver and the
/// SAFETY-comment-in-allowlisted-file case — produces no findings at all.
#[test]
fn good_fixtures_are_clean() {
    let diags = lint::run(&fixtures_root(), &load("lint-good.toml")).expect("lint runs");
    assert!(
        diags.is_empty(),
        "good fixtures flagged: {:#?}",
        diags
            .iter()
            .map(|d| format!("{} {}:{} {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
    );
}

/// The CLI contract CI relies on: non-zero + populated JSON on bad input,
/// zero + empty diagnostics on good input.
#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_leaky-lint");
    let root = fixtures_root();

    let bad = Command::new(bin)
        .args(["--json", "--root"])
        .arg(&root)
        .arg("--config")
        .arg(root.join("lint-bad.toml"))
        .output()
        .expect("spawn leaky-lint");
    assert_eq!(bad.status.code(), Some(1), "bad corpus must exit 1");
    let json = String::from_utf8(bad.stdout).expect("utf8");
    assert!(
        json.contains("\"rule\":\"D1\""),
        "json lists findings: {}",
        json
    );
    assert!(!json.contains("\"errors\":0"), "error count is non-zero");

    let good = Command::new(bin)
        .args(["--json", "--root"])
        .arg(&root)
        .arg("--config")
        .arg(root.join("lint-good.toml"))
        .output()
        .expect("spawn leaky-lint");
    assert_eq!(good.status.code(), Some(0), "good corpus must exit 0");
    let json = String::from_utf8(good.stdout).expect("utf8");
    assert!(json.contains("\"diagnostics\":[]"), "no findings: {}", json);
    assert!(json.contains("\"errors\":0"));
}

/// Meta-test: the live workspace is clean under the checked-in lint.toml.
/// This is the same invocation the CI `lint` job gates on.
#[test]
fn live_workspace_is_clean() {
    let root = workspace_root();
    let config = lint::load_config(&root).expect("workspace lint.toml parses");
    let diags = lint::run(&root, &config).expect("lint runs");
    let errors: Vec<String> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{} {}:{} {}", d.rule, d.path, d.line, d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has determinism-invariant violations:\n{}",
        errors.join("\n")
    );
}

/// The workspace config keeps all seven rules enabled at error severity —
/// a config edit that silently disables a rule fails here, not in review.
#[test]
fn workspace_config_enables_all_rules() {
    let config = lint::load_config(&workspace_root()).expect("workspace lint.toml parses");
    let ids = lint::rules::RULES
        .iter()
        .map(|r| (r.id, r.name))
        .chain(lint::arules::SEM_RULES.iter().map(|r| (r.id, r.name)));
    for (id, name) in ids {
        assert_eq!(
            config.rule(id).severity,
            Some(Severity::Error),
            "rule {} ({}) must stay at error severity",
            id,
            name
        );
    }
}

/// SARIF output on the bad corpus: the 2.1.0 shape GitHub code-scanning
/// ingests — schema pointer, tool driver with rule metadata, results with
/// ruleId/level/physicalLocation.
#[test]
fn cli_sarif_shape() {
    let bin = env!("CARGO_BIN_EXE_leaky-lint");
    let root = fixtures_root();
    let out = Command::new(bin)
        .args(["--sarif", "--no-cache", "--root"])
        .arg(&root)
        .arg("--config")
        .arg(root.join("lint-bad.toml"))
        .output()
        .expect("spawn leaky-lint");
    assert_eq!(out.status.code(), Some(1), "bad corpus still exits 1");
    let sarif = String::from_utf8(out.stdout).expect("utf8");
    for needle in [
        "sarif-schema-2.1.0",
        "\"version\": \"2.1.0\"",
        "\"driver\"",
        "\"ruleId\"",
        "\"level\"",
        "\"artifactLocation\"",
        "\"startLine\"",
    ] {
        assert!(
            sarif.contains(needle),
            "SARIF missing {}: {}",
            needle,
            sarif
        );
    }
    // Every rule family that fired in JSON shows up as a SARIF result too.
    for id in ["A1", "A2", "A3", "A4", "D1"] {
        assert!(
            sarif.contains(&format!("\"ruleId\": \"{}\"", id)),
            "no SARIF result for {}",
            id
        );
    }
}

/// `--explain` prints the rationale for token and semantic rules alike, and
/// exits 2 on an unknown id.
#[test]
fn cli_explain() {
    let bin = env!("CARGO_BIN_EXE_leaky-lint");
    for (id, needle) in [("D1", "wall-clock"), ("A3", "non-associative")] {
        let out = Command::new(bin)
            .args(["--explain", id])
            .output()
            .expect("spawn leaky-lint");
        assert_eq!(out.status.code(), Some(0), "--explain {} exits 0", id);
        let text = String::from_utf8(out.stdout).expect("utf8").to_lowercase();
        assert!(
            text.contains(needle),
            "--explain {} mentions {}",
            id,
            needle
        );
    }
    let out = Command::new(bin)
        .args(["--explain", "Z9"])
        .output()
        .expect("spawn leaky-lint");
    assert_eq!(out.status.code(), Some(2), "unknown rule id exits 2");
}

/// The incremental cache is an optimization, never an observable: a warm
/// run reproduces the cold run's diagnostics exactly and satisfies every
/// file from the cache.
#[test]
fn warm_cache_run_matches_cold() {
    let cache = std::env::temp_dir().join(format!("leaky-lint-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let root = fixtures_root();
    let config = load("lint-bad.toml");
    let cold = lint::run_full(&root, &config, Some(&cache)).expect("cold run");
    let warm = lint::run_full(&root, &config, Some(&cache)).expect("warm run");
    assert_eq!(cold.diags, warm.diags, "cache changed the diagnostics");
    assert_eq!(cold.stats.cache_hits, 0, "first run must be all misses");
    assert_eq!(
        warm.stats.cache_hits, warm.stats.files_analyzed,
        "warm run missed the cache on {} files",
        warm.stats.cache_misses
    );
    let _ = std::fs::remove_dir_all(&cache);
}

/// The checked-in workspace config carries no stale allowlist entries —
/// the same gate `--check-config` enforces in CI.
#[test]
fn workspace_config_has_no_stale_allows() {
    let root = workspace_root();
    let config = lint::load_config(&root).expect("workspace lint.toml parses");
    let problems = lint::check_config(&root, &config).expect("check runs");
    assert!(
        problems.is_empty(),
        "stale allowlist entries:\n{}",
        problems.join("\n")
    );
}

/// Property: the parser-side waiver lookup (`ParsedFile::waived`) and the
/// lexer-side table (`rules::Waivers`) agree on every (line, rule) pair of
/// a randomized source file — same comment forms, same one-line window.
#[test]
fn waiver_lookups_round_trip() {
    use lint::lexer::lex;
    use lint::parser::ParsedFile;
    use lint::rules::Waivers;

    let rules = ["A1", "A2", "A3", "A4", "D2", "D7"];
    let line_gen = testkit::gen::choice(vec![
        "fn f() { let v = xs[i]; }".to_string(),
        "let mut acc: f32 = 0.0;".to_string(),
        "// plain comment".to_string(),
        "// lint: allow(A1)".to_string(),
        "// lint: allow(A2)".to_string(),
        "// lint: allow(D2)".to_string(),
        "// cold-init scratch, one per session. lint: allow(A1)".to_string(),
        "let x = y.unwrap(); // lint: allow(A2)".to_string(),
        "// lint: sorted".to_string(),
        "// lint: allow(A3) lint: allow(A4)".to_string(),
        String::new(),
    ]);
    let src_gen = testkit::gen::vec_of(line_gen, 1, 24).map(|lines| lines.join("\n"));
    testkit::prop::check("waiver_lookups_round_trip", &src_gen, |src| {
        let lexed = lex(src);
        let table = Waivers::harvest(&lexed);
        let n_lines = src.lines().count() as u32 + 2;
        for line in 1..=n_lines {
            for rule in rules {
                let via_parser = ParsedFile::waived(&lexed, line, rule);
                let via_table = table.allowed(line, rule);
                if via_parser != via_table {
                    return Err(format!(
                        "line {} rule {}: parser={} table={}",
                        line, rule, via_parser, via_table
                    ));
                }
            }
        }
        Ok(())
    });
}
