//! A4 bad twin: a work-size gate declared ad hoc next to its consumer
//! instead of inside the audited `thresholds` module.

/// Should live in `ml::par::thresholds` and be re-exported from there.
pub const MIN_PARALLEL_ROWS: usize = 4096;

pub fn worth_splitting(rows: usize) -> bool {
    rows >= MIN_PARALLEL_ROWS
}
