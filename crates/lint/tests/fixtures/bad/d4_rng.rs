// D4 fixture: entropy a trace cannot replay.
use rand::rngs::SmallRng;
use rand::{thread_rng, Rng, SeedableRng};

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    let _fresh = SmallRng::from_entropy();
    rng.gen::<f64>()
}
