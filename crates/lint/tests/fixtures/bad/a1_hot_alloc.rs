//! A1 bad twin: an allocation is reachable from a `*_into` hot-path root.
//! The root itself is clean — the violation sits one call deep, which is
//! exactly what the lexer-only rules could not see.

/// Hot-path root (matched by `workspace::bad::*_into` in lint-bad.toml).
pub fn gemm_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    accumulate(out, a, b);
}

/// Helper on the hot path: the scratch buffer must come from a
/// caller-owned workspace, not a per-call allocation.
fn accumulate(out: &mut [f32], a: &[f32], b: &[f32]) {
    let mut scratch = Vec::with_capacity(a.len());
    for (x, y) in a.iter().zip(b.iter()) {
        scratch.push(*x * *y);
    }
    for (o, s) in out.iter_mut().zip(scratch.iter()) {
        *o = *s;
    }
}
