// D3 fixture: ad-hoc parallelism outside ml::par.
use std::thread;

pub fn fan_out(xs: Vec<u64>) -> Vec<u64> {
    let handle = thread::spawn(move || xs.into_iter().map(|x| x * 2).collect());
    handle.join().unwrap()
}
