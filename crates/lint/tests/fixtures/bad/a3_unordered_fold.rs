//! A3 bad twin: a float `+=` fold over a source whose iteration order is
//! not provably fixed (an opaque `impl Iterator` producer).

fn samples() -> impl Iterator<Item = f32> {
    [1.0f32, 2.0].into_iter()
}

/// The accumulator is provably `f32` and the source order is unproven:
/// any reordering upstream changes the bitwise result.
pub fn total() -> f32 {
    let mut acc: f32 = 0.0;
    for v in samples() {
        acc += v;
    }
    acc
}
