//! Bad: CPU-arch intrinsics scattered outside the SIMD module. Feature
//! detection, `core::arch` imports and raw `_mm*` identifiers must all be
//! confined to the allowlisted dispatch module.

use core::arch::x86_64::_mm256_add_ps;

pub fn has_avx2() -> bool {
    is_x86_feature_detected!("avx2")
}

pub fn stray_kernel(a: core::arch::x86_64::__m256, b: core::arch::x86_64::__m256) {
    let _ = _mm256_add_ps(a, b);
}
