// D7 fixture: order-sensitive float reductions over par_map results.
pub fn total_cost(items: &[Item]) -> f32 {
    par_map(items, |_, it| it.cost()).iter().sum()
}

pub fn total_cost_turbofish(items: &[Item]) -> f64 {
    par_map(items, |_, it| it.cost_f64()).into_iter().sum::<f64>()
}
