// D4 fixture: a waiver names the wrong rule, so it waives nothing. The
// `allow(D2)` below would only suppress a hash-iteration finding; the
// unseeded RNG on the next line must still fire D4.
use rand::{thread_rng, Rng};

pub fn jitter() -> f64 {
    // lint: allow(D2)
    let mut rng = thread_rng();
    rng.gen::<f64>()
}
