// D3 fixture: per-call scoped spawning outside ml::par::pool — the
// pre-pool idiom the persistent worker pool replaced. Hand-rolled scopes
// re-pay the spawn tax and sit outside the deterministic-dispatch audit.
pub fn fan_out_scoped(xs: &[u64]) -> Vec<u64> {
    std::thread::scope(|s| {
        let handle = s.spawn(|| xs.iter().map(|x| x * 2).collect::<Vec<u64>>());
        handle.join().unwrap()
    })
}
