// D6 fixture: Debug formatting feeding cache-key material.
pub fn cache_key(config: &crate::GpuConfig, seed: u64) -> String {
    format!("gpu={:?}/seed={}", config, seed)
}
