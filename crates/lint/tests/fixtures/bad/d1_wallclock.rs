// D1 fixture: host wall-clock reads in pipeline code.
use std::time::{Instant, SystemTime};

pub fn sample_window() -> f64 {
    let t0 = Instant::now();
    busy_work();
    let _epoch = SystemTime::now();
    t0.elapsed().as_secs_f64()
}

fn busy_work() {}
