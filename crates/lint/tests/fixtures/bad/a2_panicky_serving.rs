//! A2 bad twin: a panic site and an unguarded index, both reachable from
//! the fleet-serving root — one malformed session would abort the whole
//! fleet instead of degrading.

/// Serving root (named in `rules.A2.roots`).
pub fn run_fleet(queue: &[usize], states: &[f32]) -> f32 {
    let head = next_session(queue);
    pick(states, head)
}

/// `.unwrap()` one call below the root: an empty queue kills the fleet.
fn next_session(queue: &[usize]) -> usize {
    queue.first().copied().unwrap()
}

/// Unguarded `states[i]` in an `index_paths` module.
fn pick(states: &[f32], i: usize) -> f32 {
    states[i]
}
