// D5 fixture: unsafe outside the allowlist, and without a SAFETY comment.
pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
