// D2 fixture: hash-order iteration without a waiver.
use std::collections::{HashMap, HashSet};

pub fn tally(weights: &HashMap<String, f64>) -> Vec<String> {
    let mut out = Vec::new();
    for (name, w) in weights.iter() {
        if *w > 0.0 {
            out.push(name.clone());
        }
    }
    out
}

pub fn drain_all(mut seen: HashSet<u64>) -> usize {
    let mut n = 0;
    for id in seen.drain() {
        n += (id > 0) as usize;
    }
    n
}
