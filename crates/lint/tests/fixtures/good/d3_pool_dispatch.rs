// D3 good case: fan-out through the persistent deterministic worker pool —
// in-place chunked dispatch and two-sided join both route via ml::par, so
// no thread is ever spawned outside ml::par::pool.
pub fn advance_in_place(states: &mut [u64]) -> Vec<u64> {
    ml::par::par_map_mut(states, |_, s| {
        *s += 1;
        *s
    })
}

pub fn both_sides(xs: &[u64]) -> (u64, usize) {
    ml::par::join(|| xs.iter().sum(), || xs.len())
}
