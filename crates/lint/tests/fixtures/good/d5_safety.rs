// D5 good case: allowlisted file, SAFETY comment directly above the block.
pub fn read_first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees xs has at least one element, so
    // the pointer read is within bounds.
    unsafe { *xs.as_ptr() }
}
