//! Good: arch intrinsics inside the allowlisted SIMD module
//! (`rules.D8.allow` covers this file, mirroring how the workspace config
//! allowlists `crates/ml/src/simd.rs`). The dispatch-and-fallback pairing
//! keeps the scalar path provably equivalent.

#[cfg(target_arch = "x86_64")]
pub fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}
