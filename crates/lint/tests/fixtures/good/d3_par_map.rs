// D3 good case: parallelism through the deterministic pool only.
pub fn fan_out(xs: &[u64]) -> Vec<u64> {
    ml::par::par_map(xs, |_, &x| x * 2)
}
