// D4 good case: every RNG replays from a recorded seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen::<f64>()
}
