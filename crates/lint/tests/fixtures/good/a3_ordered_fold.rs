//! A3 good twin: folds over order-fixed sources (slice, range) pass, and a
//! `// lint: sorted` waiver covers the one source whose order is
//! re-established upstream.

fn samples() -> impl Iterator<Item = f32> {
    [1.0f32, 2.0].into_iter()
}

pub fn total(xs: &[f32]) -> f32 {
    let mut acc: f32 = 0.0;
    for v in xs.iter() {
        acc += *v;
    }
    for i in 0..4 {
        acc += i as f32;
    }
    // The producer yields ascending values by construction. lint: sorted
    for v in samples() {
        acc += v;
    }
    acc
}
