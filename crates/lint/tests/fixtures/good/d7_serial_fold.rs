// D7 good cases: integer sums are exact; float totals fold serially in
// input order after the parallel map returns.
pub fn count_hits(items: &[Item]) -> usize {
    par_map(items, |_, it| it.hits()).iter().sum::<usize>()
}

pub fn total_cost(items: &[Item]) -> f32 {
    let parts = par_map(items, |_, it| it.cost());
    let mut total = 0.0_f32;
    for p in &parts {
        total += p;
    }
    total
}
