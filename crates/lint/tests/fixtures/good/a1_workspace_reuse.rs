//! A1 good twin: the hot path only writes into caller-owned buffers; the
//! allocation lives in a cold constructor the configured roots never
//! reach, so reachability — not file location — decides.

/// Cold-path constructor: allocates freely (not reachable from `*_into`).
pub fn make_workspace(n: usize) -> Vec<f32> {
    Vec::with_capacity(n)
}

/// Hot-path root: every buffer is provided by the caller.
pub fn gemm_into(out: &mut [f32], a: &[f32], b: &[f32], scratch: &mut [f32]) {
    accumulate(out, a, b, scratch);
}

fn accumulate(out: &mut [f32], a: &[f32], b: &[f32], scratch: &mut [f32]) {
    for ((s, x), y) in scratch.iter_mut().zip(a.iter()).zip(b.iter()) {
        *s = *x * *y;
    }
    for (o, s) in out.iter_mut().zip(scratch.iter()) {
        *o = *s;
    }
}
