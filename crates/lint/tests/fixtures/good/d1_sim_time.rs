// D1 good case: time comes from the simulated clock, not the host.
pub fn sample_window(engine: &Engine) -> f64 {
    let t0 = engine.now_us();
    engine.step();
    engine.now_us() - t0
}
