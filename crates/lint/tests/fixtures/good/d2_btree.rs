// D2 good cases: BTree iteration is ordered; a HashMap may be iterated
// only under a `// lint: sorted` waiver with the sort on the next line.
//
// Note the HashMap bindings carry different names from the BTreeMap one:
// the binding tracker is deliberately scope-free (file-wide), so reusing a
// name across functions would widen the net — which is the conservative
// direction, but not what this fixture demonstrates.
use std::collections::{BTreeMap, HashMap};

pub fn tally(weights: &BTreeMap<String, f64>) -> Vec<String> {
    let mut out = Vec::new();
    for (name, w) in weights.iter() {
        if *w > 0.0 {
            out.push(name.clone());
        }
    }
    out
}

pub fn sorted_pairs(unordered: &HashMap<String, f64>) -> Vec<(String, f64)> {
    // lint: sorted
    let mut pairs: Vec<(String, f64)> = unordered.iter().map(|(k, v)| (k.clone(), *v)).collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    pairs
}

pub fn lookups_are_fine(index: &HashMap<String, f64>) -> f64 {
    index.get("conv2d").copied().unwrap_or(0.0) + index.len() as f64
}
