// D6 good case: cache keys hash canonical field values, never Debug output.
pub fn cache_key(config: &crate::GpuConfig, seed: u64) -> u64 {
    let mut h = KeyHasher::new();
    h.write_u64(config.sm_count as u64);
    h.write_f64(config.slice_us);
    h.write_u64(seed);
    h.finish()
}
