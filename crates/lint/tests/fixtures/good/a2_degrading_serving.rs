//! A2 good twin: the serving path degrades (let-else + early return), the
//! index is guarded by an assert naming both the slice and the index, and
//! panic sites are confined to offline tooling the root never reaches.

/// Serving root (named in `rules.A2.roots`).
pub fn run_fleet(queue: &[usize], states: &[f32]) -> f32 {
    let Some(head) = next_session(queue) else {
        return 0.0;
    };
    pick(states, head)
}

fn next_session(queue: &[usize]) -> Option<usize> {
    queue.first().copied()
}

/// Call-site contract: asserts are allowed on the serving path, and this
/// one establishes the bounds the subscript below relies on.
fn pick(states: &[f32], i: usize) -> f32 {
    assert!(i < states.len(), "session index in range");
    states[i]
}

/// Offline tooling may panic: `run_fleet` never reaches it.
pub fn debug_dump(states: &[f32]) -> f32 {
    states.first().copied().unwrap()
}
