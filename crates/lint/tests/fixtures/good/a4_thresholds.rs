//! A4 good twin: the gate lives in a `thresholds` module on the
//! `rules.A4.allow` list — the one place work-size gates are audited.

pub mod thresholds {
    /// The audited work-size gate.
    pub const MIN_PARALLEL_ROWS: usize = 4096;
}

pub fn worth_splitting(rows: usize) -> bool {
    rows >= thresholds::MIN_PARALLEL_ROWS
}
