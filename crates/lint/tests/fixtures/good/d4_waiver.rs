// D4 good case: the generic line-local waiver. The RNG below is unseeded —
// which D4 would normally flag — but the `allow(D4)` comment on the line
// above suppresses exactly that finding and nothing else.
use rand::Rng;

pub fn jitter() -> f64 {
    // lint: allow(D4)
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}
