//! Dense row-major `f32` matrices with the small set of BLAS-like operations
//! the LSTM / dense layers need.
//!
//! The matrix type is deliberately minimal: it is an internal numeric engine,
//! not a general linear-algebra library. All operations validate shapes and
//! panic with a descriptive message on mismatch (these are programmer errors,
//! not runtime conditions).

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::rngs::StdRng;
use rand::Rng;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use ml::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let max_cols = 8.min(self.cols);
            let vals: Vec<String> = (0..max_cols)
                .map(|c| format!("{:9.4}", self[(r, c)]))
                .collect();
            let ellipsis = if self.cols > max_cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", vals.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            // cold-init: `zeros` is the one blessed dense allocator; hot
            // paths resize pre-sized buffers instead of constructing.
            // lint: allow(A1)
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows in from_rows");
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_rows(&[values])
    }

    /// Builds a matrix with entries drawn uniformly from `[-limit, limit]`.
    pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut StdRng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
    }

    /// Xavier/Glorot uniform initialization for a weight matrix mapping
    /// `cols` inputs to `rows` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements (never true: dimensions are
    /// validated as non-zero at construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the backing storage (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow one row.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Reshapes in place to `rows` x `cols` and zero-fills, reusing the
    /// existing allocation whenever its capacity suffices. This is the
    /// workhorse of the training [`crate::workspace::Workspace`]: buffers are
    /// resized per example instead of reallocated.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src` into `self`, adopting its shape, without reallocating
    /// when capacity allows.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the register-tiled microkernel (see [`TILE_M`]/[`TILE_N`])
    /// parallelized over output-row blocks for large products. The `k`
    /// summation order per output element is globally ascending — the same
    /// order as the naive triple loop — so the result is bitwise equal to
    /// [`Matrix::matmul_naive`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.matmul_into(other, &mut out);
        out
    }

    /// In-place variant of [`Matrix::matmul`]: writes the product into `out`,
    /// resizing it (allocation-free once capacity is warm). Bitwise identical
    /// to the allocating path — same kernel, same summation order.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.cols);
        run_row_blocks(
            &mut out.data,
            self.rows,
            other.cols,
            self.cols,
            |r0, buf| {
                gemm_block(&self.data, self.cols, &other.data, other.cols, r0, buf);
            },
        );
    }

    /// Reference `self * other`: the plain i-k-j triple loop. Kept as the
    /// ground truth the blocked/parallel [`Matrix::matmul`] must match
    /// bitwise (property-tested).
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self^T * other`, parallelized over output-row blocks.
    /// Per output element the `k` order is ascending, matching
    /// [`Matrix::t_matmul_naive`] bitwise.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// In-place variant of [`Matrix::t_matmul`]: writes `self^T * other` into
    /// `out`, resizing it. Bitwise identical to the allocating path.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.cols, other.cols);
        run_row_blocks(
            &mut out.data,
            self.cols,
            other.cols,
            self.rows,
            |i0, buf| {
                gemm_t_block(
                    &self.data,
                    self.cols,
                    self.rows,
                    &other.data,
                    other.cols,
                    i0,
                    buf,
                );
            },
        );
    }

    /// Reference `self^T * other`: the plain k-i-j triple loop.
    pub fn t_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * other^T`: independent row-pair dot products,
    /// parallelized over output-row blocks. The accumulation order within
    /// each dot product is unchanged from the serial version.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// In-place variant of [`Matrix::matmul_t`]: writes `self * other^T` into
    /// `out`, resizing it. Bitwise identical to the allocating path.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.rows);
        run_row_blocks(
            &mut out.data,
            self.rows,
            other.rows,
            self.cols,
            |r0, buf| {
                for (di, out_row) in buf.chunks_mut(other.rows).enumerate() {
                    let i = r0 + di;
                    let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (j, o) in out_row.iter_mut().enumerate() {
                        let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                        let mut acc = 0.0f32;
                        for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                            acc += a * b;
                        }
                        *o = acc;
                    }
                }
            },
        );
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Writes the transpose of `self` into `out`, resizing it
    /// (allocation-free once capacity is warm).
    pub fn transposed_into(&self, out: &mut Matrix) {
        out.resize_zeroed(self.cols, self.rows);
        for r in 0..self.rows {
            let src = self.row(r);
            for (c, &v) in src.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += scale * other` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination of two equally-shaped matrices.
    pub fn zip_with(&self, other: &Matrix, mut f: impl FnMut(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip_with shape mismatch"
        );
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for v in out.data.iter_mut() {
            *v = f(*v);
        }
        out
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for v in self.data.iter_mut() {
            *v *= scale;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Adds a row vector `bias` (1 x cols) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Row height of the register-tiled GEMM microkernel: each inner iteration
/// updates a [`TILE_M`] x [`TILE_N`] accumulator block held in locals.
pub const TILE_M: usize = 4;

/// Column width of the register-tiled GEMM microkernel accumulator block.
pub const TILE_N: usize = 8;

use crate::par::thresholds::MIN_PARALLEL_GEMM_FLOPS;

/// Register-tiled `A * B` over a strip of output rows starting at `r0`.
///
/// Walks [`TILE_M`] x [`TILE_N`] output tiles with the `k` loop innermost
/// and ascending: every output element still accumulates its products in
/// exactly the naive triple-loop order, so the result is bitwise equal to
/// [`Matrix::matmul_naive`] — the tiling only changes *which* elements are
/// in flight together, never the per-element summation chain. Edge rows and
/// columns that do not fill a tile fall back to scalar ascending-`k`
/// accumulation into the zero-initialized `buf`.
///
/// Full tiles dispatch to [`crate::simd::gemm_tile_4x8`], which runs the
/// same accumulation across AVX2 lanes when available — each of the
/// [`TILE_N`] output columns is an independent ascending-`k` chain, so the
/// vector path is bitwise identical to the scalar one (property-tested at
/// lane-boundary shapes in this module).
fn gemm_block(a: &[f32], k_dim: usize, b: &[f32], n: usize, r0: usize, buf: &mut [f32]) {
    let use_simd = crate::simd::enabled();
    let rows = buf.len() / n;
    let mut di = 0;
    while di + TILE_M <= rows {
        let a_rows: [&[f32]; TILE_M] = std::array::from_fn(|t| {
            let i = r0 + di + t;
            &a[i * k_dim..(i + 1) * k_dim]
        });
        let mut j = 0;
        while j + TILE_N <= n {
            let mut acc = [[0.0f32; TILE_N]; TILE_M];
            crate::simd::gemm_tile_4x8(&a_rows, b, n, j, k_dim, &mut acc, use_simd);
            for (t, acc_row) in acc.iter().enumerate() {
                buf[(di + t) * n + j..(di + t) * n + j + TILE_N].copy_from_slice(acc_row);
            }
            j += TILE_N;
        }
        for jr in j..n {
            for (t, a_row) in a_rows.iter().enumerate() {
                let mut acc = 0.0f32;
                for (k, &av) in a_row.iter().enumerate() {
                    acc += av * b[k * n + jr];
                }
                buf[(di + t) * n + jr] = acc;
            }
        }
        di += TILE_M;
    }
    for dr in di..rows {
        let i = r0 + dr;
        let a_row = &a[i * k_dim..(i + 1) * k_dim];
        let out_row = &mut buf[dr * n..(dr + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            let b_row = &b[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Register-tiled `A^T * B` over a strip of output rows starting at `i0`.
///
/// Same accumulation-order contract as [`gemm_block`]: the `k` loop is
/// innermost and ascending for every output element, so the result matches
/// [`Matrix::t_matmul_naive`] bitwise. Here the [`TILE_M`]-wide strip of `A`
/// values at a given `k` is contiguous (`A[k][i..i + TILE_M]`), which is what
/// makes the transposed product tile-friendly without materializing `A^T`.
fn gemm_t_block(
    a: &[f32],
    a_cols: usize,
    k_dim: usize,
    b: &[f32],
    n: usize,
    i0: usize,
    buf: &mut [f32],
) {
    let use_simd = crate::simd::enabled();
    let rows = buf.len() / n;
    let mut di = 0;
    while di + TILE_M <= rows {
        let i = i0 + di;
        let mut j = 0;
        while j + TILE_N <= n {
            let mut acc = [[0.0f32; TILE_N]; TILE_M];
            crate::simd::gemm_t_tile_4x8(a, a_cols, i, b, n, j, k_dim, &mut acc, use_simd);
            for (t, acc_row) in acc.iter().enumerate() {
                buf[(di + t) * n + j..(di + t) * n + j + TILE_N].copy_from_slice(acc_row);
            }
            j += TILE_N;
        }
        for jr in j..n {
            for t in 0..TILE_M {
                let mut acc = 0.0f32;
                for k in 0..k_dim {
                    acc += a[k * a_cols + i + t] * b[k * n + jr];
                }
                buf[(di + t) * n + jr] = acc;
            }
        }
        di += TILE_M;
    }
    for dr in di..rows {
        let i = i0 + dr;
        let out_row = &mut buf[dr * n..(dr + 1) * n];
        for k in 0..k_dim {
            let av = a[k * a_cols + i];
            let b_row = &b[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Runs `kernel` over blocks of output rows, in parallel when the product is
/// large enough. `kernel(r0, buf)` must fill `buf` (zero-initialized,
/// row-major, `buf.len() / out_cols` rows) with output rows starting at
/// `r0`. Each output element is written by exactly one worker, so the result
/// is identical for any worker count.
fn run_row_blocks(
    out: &mut [f32],
    rows: usize,
    out_cols: usize,
    inner_dim: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    let workers = crate::par::threads();
    if workers <= 1 || rows < 2 || rows * out_cols * inner_dim < MIN_PARALLEL_GEMM_FLOPS {
        kernel(0, out);
        return;
    }
    // A few blocks per worker for load balancing; block boundaries do not
    // affect the result, only the schedule.
    let n_blocks = (workers * 4).min(rows);
    let block = rows.div_ceil(n_blocks);
    // Parallel scatter set-up: one range list and one per-block buffer per
    // round, amortized over the block GEMM — the same blessing as
    // ml::par::par_map's own result collection (DESIGN.md §9).
    let ranges: Vec<(usize, usize)> = (0..rows)
        .step_by(block)
        .map(|r0| (r0, (r0 + block).min(rows)))
        .collect(); // lint: allow(A1)
    let parts = crate::par::par_map(&ranges, |_, &(r0, r1)| {
        let mut buf = vec![0.0f32; (r1 - r0) * out_cols]; // lint: allow(A1)
        kernel(r0, &mut buf);
        buf
    });
    for (&(r0, _), part) in ranges.iter().zip(parts.iter()) {
        out[r0 * out_cols..r0 * out_cols + part.len()].copy_from_slice(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert_eq!(z.sum(), 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transposed().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Matrix::uniform(6, 3, 1.0, &mut rng);
        let d = Matrix::uniform(2, 3, 1.0, &mut rng);
        let fast = c.matmul_t(&d);
        let slow = c.matmul(&d.transposed());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// Generator for GEMM shapes `(m, k, n)`. Dimensions deliberately straddle
    /// every special case in the tiled kernels: 1 (degenerate), values off the
    /// `TILE_M`/`TILE_N` microkernel grid, and products on both sides of the
    /// `MIN_PARALLEL_GEMM_FLOPS` fan-out threshold (ml::par::thresholds).
    fn gemm_shape() -> testkit::Gen<(usize, usize, usize)> {
        testkit::gen::zip3(
            testkit::gen::usize_in(1, 96),
            testkit::gen::usize_in(1, 96),
            testkit::gen::usize_in(1, 300),
        )
    }

    /// Matrix contents derived from the shape alone, so a shrunk
    /// counterexample is fully reproducible from the printed tuple.
    fn shape_rng(tag: u64, (m, k, n): (usize, usize, usize)) -> StdRng {
        StdRng::seed_from_u64(tag ^ ((m as u64) << 40 | (k as u64) << 20 | n as u64))
    }

    #[test]
    fn blocked_products_match_naive_bitwise_across_thread_counts() {
        testkit::check("gemm_blocked_vs_naive", &gemm_shape(), |&(m, k, n)| {
            let mut rng = shape_rng(0xb10c, (m, k, n));
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let reference = a.matmul_naive(&b);
            let at = Matrix::uniform(k, m, 1.0, &mut rng);
            let t_reference = at.t_matmul_naive(&b);
            for threads in [1usize, 2, 5] {
                let (fast, t_fast) =
                    crate::par::with_threads(threads, || (a.matmul(&b), at.t_matmul(&b)));
                testkit::prop::holds(
                    fast == reference,
                    format!("matmul {m}x{k}x{n} @ {threads} threads"),
                )?;
                testkit::prop::holds(
                    t_fast == t_reference,
                    format!("t_matmul {m}x{k}x{n} @ {threads} threads"),
                )?;
            }
            Ok(())
        });
    }

    /// Dimensions that sit exactly on, just inside, and just outside the
    /// microkernel tile grid, plus primes that never align with it.
    fn tile_boundary_dim() -> testkit::Gen<usize> {
        testkit::gen::choice(vec![
            1,
            TILE_M - 1,
            TILE_M,
            TILE_M + 1,
            TILE_N - 1,
            TILE_N,
            TILE_N + 1,
            2 * TILE_N + 1,
            13,
            31,
        ])
    }

    #[test]
    fn microkernel_matches_naive_bitwise_on_tile_boundary_shapes() {
        let shape = testkit::gen::zip3(
            tile_boundary_dim(),
            tile_boundary_dim(),
            tile_boundary_dim(),
        );
        testkit::check("gemm_microkernel_tile_boundaries", &shape, |&(m, k, n)| {
            let mut rng = shape_rng(0x711e, (m, k, n));
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let reference = a.matmul_naive(&b);
            let at = Matrix::uniform(k, m, 1.0, &mut rng);
            let t_reference = at.t_matmul_naive(&b);
            for threads in [1usize, 2, 8] {
                let (fast, t_fast) =
                    crate::par::with_threads(threads, || (a.matmul(&b), at.t_matmul(&b)));
                testkit::prop::holds(
                    fast == reference,
                    format!("microkernel matmul {m}x{k}x{n} @ {threads} threads"),
                )?;
                testkit::prop::holds(
                    t_fast == t_reference,
                    format!("microkernel t_matmul {m}x{k}x{n} @ {threads} threads"),
                )?;
            }
            Ok(())
        });
    }

    /// `k` values covering every residue class mod [`TILE_N`] — the SIMD
    /// kernel's lane width — on both sides of one and two full lane strips.
    fn lane_boundary_k() -> testkit::Gen<usize> {
        testkit::gen::choice((1..=2 * TILE_N).chain([31, 40]).collect())
    }

    #[test]
    fn simd_and_scalar_gemm_match_naive_bitwise_on_lane_boundary_shapes() {
        // The tentpole contract: with the AVX2 lane kernel dispatched (when
        // the host supports it) and with it forced off, every product is
        // bitwise equal to the naive triple loop, for every k % 8 residue
        // and at every worker count. On hosts without AVX2 both arms are
        // the scalar path and the sweep degenerates to the PR 5 property.
        let shape = testkit::gen::zip3(tile_boundary_dim(), lane_boundary_k(), tile_boundary_dim());
        testkit::check("gemm_simd_lane_boundaries", &shape, |&(m, k, n)| {
            let mut rng = shape_rng(0x51d0, (m, k, n));
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let reference = a.matmul_naive(&b);
            let at = Matrix::uniform(k, m, 1.0, &mut rng);
            let t_reference = at.t_matmul_naive(&b);
            for simd in [false, true] {
                for threads in [1usize, 2, 8] {
                    let (fast, t_fast) = crate::simd::with_simd(simd, || {
                        crate::par::with_threads(threads, || (a.matmul(&b), at.t_matmul(&b)))
                    });
                    testkit::prop::holds(
                        fast == reference,
                        format!("matmul {m}x{k}x{n} @ {threads} threads, simd={simd}"),
                    )?;
                    testkit::prop::holds(
                        t_fast == t_reference,
                        format!("t_matmul {m}x{k}x{n} @ {threads} threads, simd={simd}"),
                    )?;
                }
            }
            Ok(())
        });
    }

    #[test]
    fn matmul_t_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(0xb10d);
        let a = Matrix::uniform(60, 90, 1.0, &mut rng);
        let b = Matrix::uniform(48, 90, 1.0, &mut rng);
        let one = crate::par::with_threads(1, || a.matmul_t(&b));
        let many = crate::par::with_threads(6, || a.matmul_t(&b));
        assert_eq!(one, many);
    }

    #[test]
    fn broadcast_and_axpy() {
        let mut m = Matrix::filled(2, 3, 1.0);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[2.0, 3.0, 4.0]);
        let other = Matrix::filled(2, 3, 2.0);
        m.add_scaled(&other, 0.5);
        assert_eq!(m[(0, 0)], 3.0);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(16, 8, &mut rng);
        let limit = (6.0 / 24.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
        // Not all entries identical.
        assert!(m.as_slice().iter().any(|&v| v != m[(0, 0)]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_access_and_set() {
        let mut m = Matrix::zeros(2, 2);
        m.set_row(1, &[5.0, 6.0]);
        assert_eq!(m.row(1), &[5.0, 6.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn into_kernels_reuse_buffers_and_match_allocating_paths() {
        testkit::check("gemm_into_vs_allocating", &gemm_shape(), |&(m, k, n)| {
            let mut rng = shape_rng(0x17_70, (m, k, n));
            // Warm capacity with stale contents: `_into` must fully overwrite.
            let mut out = Matrix::zeros(200, 200);
            out.map_inplace(|_| 7.5);
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            a.matmul_into(&b, &mut out);
            testkit::prop::holds(out == a.matmul_naive(&b), "matmul_into != naive")?;

            let at = Matrix::uniform(k, m, 1.0, &mut rng);
            at.t_matmul_into(&b, &mut out);
            testkit::prop::holds(out == at.t_matmul_naive(&b), "t_matmul_into != naive")?;

            let bt = Matrix::uniform(n, k, 1.0, &mut rng);
            a.matmul_t_into(&bt, &mut out);
            testkit::prop::holds(
                out == a.matmul(&bt.transposed()),
                "matmul_t_into != explicit transpose",
            )
        });
    }

    #[test]
    fn resize_and_copy_from() {
        let mut m = Matrix::filled(3, 3, 2.0);
        m.resize_zeroed(2, 5);
        assert_eq!((m.rows(), m.cols()), (2, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn map_and_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = a.map(f32::abs);
        assert_eq!(b.row(0), &[1.0, 2.0]);
        let h = a.hadamard(&b);
        assert_eq!(h.row(0), &[1.0, -4.0]);
    }
}
