//! Feature scaling. The paper pre-processes every CUPTI counter vector with
//! MinMax scaling to `[0, 1]` before feeding `Mgap` (§IV-A) — and we apply the
//! same transform ahead of the LSTM models.

/// Per-feature min-max scaler mapping each column to `[0, 1]`.
///
/// Constant columns map to `0.0` (the paper notes some counters are constant
/// and uninformative; scaling them to a constant keeps them harmless).
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl MinMaxScaler {
    /// Learns column ranges from the given rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let width = rows[0].len();
        let mut mins = vec![f32::INFINITY; width];
        let mut maxs = vec![f32::NEG_INFINITY; width];
        for row in rows {
            assert_eq!(row.len(), width, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.mins.len()
    }

    /// Scales one row into `[0, 1]` per feature. Values outside the fitted
    /// range are clamped (test-time traces can exceed training extremes).
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| {
                let span = self.maxs[j] - self.mins[j];
                if span <= 0.0 {
                    0.0
                } else {
                    ((v - self.mins[j]) / span).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Scales many rows.
    pub fn transform(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let s = MinMaxScaler::fit(&rows);
        let t = s.transform(&rows);
        assert_eq!(t[0], vec![0.0, 0.0]);
        assert_eq!(t[1], vec![0.5, 0.5]);
        assert_eq!(t[2], vec![1.0, 1.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![7.0, 1.0], vec![7.0, 2.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_row(&[7.0, 1.5]), vec![0.0, 0.5]);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let rows = vec![vec![0.0], vec![10.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_row(&[-5.0]), vec![0.0]);
        assert_eq!(s.transform_row(&[20.0]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }
}
