//! Evaluation metrics: accuracy, confusion matrices, and the mean/σ summary
//! format the paper uses for CUPTI readings ("average (standard deviation)").

use std::fmt;

/// Fraction of positions where `pred == truth`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    assert!(!pred.is_empty(), "accuracy of empty slices");
    let correct = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / pred.len() as f64
}

/// A square confusion matrix indexed `[truth][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel prediction/truth slices.
    pub fn from_predictions(pred: &[usize], truth: &[usize], classes: usize) -> Self {
        let mut m = ConfusionMatrix::new(classes);
        for (&p, &t) in pred.iter().zip(truth) {
            m.record(t, p);
        }
        m
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(
            truth < self.classes && pred < self.classes,
            "class out of range"
        );
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Count of observations with the given truth/pred pair.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.classes + pred]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Overall accuracy (diagonal mass / total); 0 if empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Recall for one class: correct / truth-count (0 if never seen).
    pub fn recall(&self, class: usize) -> f64 {
        let row: usize = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / row as f64
        }
    }

    /// Precision for one class: correct / predicted-count (0 if never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let col: usize = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / col as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "truth\\pred {}",
            (0..self.classes)
                .map(|c| format!("{:>7}", c))
                .collect::<String>()
        )?;
        for t in 0..self.classes {
            write!(f, "{:>10}", t)?;
            for p in 0..self.classes {
                write!(f, "{:>7}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Mean and (population) standard deviation of a sample, formatted the way
/// the paper reports counter readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean/σ of the values; zero for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}({:.2})", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn confusion_matrix_counts_and_metrics() {
        let pred = [0, 0, 1, 1, 1, 0];
        let truth = [0, 1, 1, 1, 0, 0];
        let m = ConfusionMatrix::from_predictions(&pred, &truth, 2);
        assert_eq!(m.total(), 6);
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_of_unseen_class_is_zero() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.precision(2), 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let ms = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ms.mean - 5.0).abs() < 1e-12);
        assert!((ms.std - 2.0).abs() < 1e-12);
        assert_eq!(format!("{}", ms), "5.00(2.00)");
    }

    #[test]
    fn mean_std_empty_is_zero() {
        let ms = MeanStd::of(&[]);
        assert_eq!(ms.mean, 0.0);
        assert_eq!(ms.std, 0.0);
    }

    #[test]
    fn display_confusion_matrix_nonempty() {
        let m = ConfusionMatrix::from_predictions(&[0], &[0], 2);
        assert!(!format!("{}", m).is_empty());
    }
}
