//! Explicit-lane SIMD kernels behind runtime CPU-feature dispatch.
//!
//! This is the only module in the workspace allowed to touch `core::arch`
//! (leaky-lint rule D8 enforces the confinement). Everything here obeys the
//! same contract as the scalar microkernel in [`crate::matrix`]: the `f32`
//! kernels are **bitwise identical** to the naive triple loop, because the
//! vectorization runs across the `TILE_N = 8` output-column lanes — eight
//! *independent* ascending-`k` accumulation chains — and never reorders or
//! fuses the per-element `mul`-then-`add` sequence. In particular FMA is
//! deliberately not used: `a.mul_add(b, c)` rounds once where `a * b + c`
//! rounds twice, which would change bit patterns.
//!
//! Dispatch is resolved once per process by [`enabled`]: the
//! `LEAKY_DNN_SIMD` environment variable (`off` / `0` / `false` forces the
//! scalar fallback) AND-ed with a runtime AVX2 check on x86_64; every other
//! architecture always takes the scalar path. Tests pin both paths against
//! each other through [`with_simd`], which installs a *process-wide*
//! override — process-wide rather than thread-local on purpose, because
//! [`crate::par::par_map`] runs on persistent pool workers that never
//! inherit the caller's thread-locals. Cross-thread visibility of the override is
//! harmless: both paths produce bitwise-identical results, so which one a
//! concurrent caller observes is a scheduling detail, never an arithmetic
//! one.
//!
//! The integer kernel ([`dot_i8`]) serves the int8 path in [`crate::quant`].
//! `i8 x i8 -> i32` accumulation is exact (no rounding anywhere), so lane
//! order is irrelevant and the AVX2 widening-multiply path is trivially
//! equal to the scalar loop.

use crate::matrix::{TILE_M, TILE_N};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Process-wide dispatch override installed by [`with_simd`]:
/// 0 = unset (auto), 1 = force scalar, 2 = auto-detect.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached result of the environment + CPU-feature probe.
static DETECTED: OnceLock<bool> = OnceLock::new();

fn detect() -> bool {
    if let Ok(v) = std::env::var("LEAKY_DNN_SIMD") {
        let v = v.trim().to_ascii_lowercase();
        if v == "off" || v == "0" || v == "false" {
            return false;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the SIMD kernels are active for this call. Resolution order: the
/// [`with_simd`] override, then the cached `LEAKY_DNN_SIMD` / AVX2 probe.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        _ => *DETECTED.get_or_init(detect),
    }
}

/// Runs `f` with SIMD dispatch forced off (`false`) or back to auto-detect
/// (`true`), restoring the previous override afterwards (also on panic).
///
/// The override is process-wide (see the module docs for why); since both
/// dispatch targets are bitwise-equal, concurrent tests observing each
/// other's override can change timing only, never results.
pub fn with_simd<R>(enable: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(OVERRIDE.swap(if enable { 2 } else { 1 }, Ordering::Relaxed));
    f()
}

/// One full [`TILE_M`] x [`TILE_N`] tile of `A * B`, accumulated over
/// `k_dim` with the lane dimension along the eight output columns.
///
/// `a_rows` are the four A rows (each at least `k_dim` long), `b` is the
/// row-major right-hand side with row stride `n`, and the tile's top-left
/// output column is `j`. Falls back to the scalar loop (identical bit
/// patterns) when SIMD is disabled or unavailable.
#[inline]
pub fn gemm_tile_4x8(
    a_rows: &[&[f32]; TILE_M],
    b: &[f32],
    n: usize,
    j: usize,
    k_dim: usize,
    acc: &mut [[f32; TILE_N]; TILE_M],
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // All slice accesses inside are bounds-derived from the same
        // indices the scalar path uses.
        // SAFETY: `enabled()` (threaded through `use_simd`) returned true
        // only after `is_x86_feature_detected!("avx2")` confirmed AVX2
        // support on this CPU, so calling the `#[target_feature]` fn is sound.
        unsafe {
            avx2::gemm_tile_4x8(a_rows, b, n, j, k_dim, acc);
        }
        return;
    }
    let _ = use_simd;
    for k in 0..k_dim {
        let Ok(b_strip) = <&[f32; TILE_N]>::try_from(&b[k * n + j..k * n + j + TILE_N]) else {
            // The slice is TILE_N wide by construction; skip the strip
            // rather than panic inside the serving GEMM.
            debug_assert!(false, "strip is TILE_N wide");
            continue;
        };
        for (acc_row, a_row) in acc.iter_mut().zip(a_rows.iter()) {
            let av = a_row[k];
            for (o, &bv) in acc_row.iter_mut().zip(b_strip.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// One full [`TILE_M`] x [`TILE_N`] tile of `A^T * B`: at each `k` the four
/// A values are contiguous (`A[k][i..i + TILE_M]`) and each is broadcast
/// across the eight B lanes. Same bitwise contract as [`gemm_tile_4x8`].
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_tile_4x8(
    a: &[f32],
    a_cols: usize,
    i: usize,
    b: &[f32],
    n: usize,
    j: usize,
    k_dim: usize,
    acc: &mut [[f32; TILE_N]; TILE_M],
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: as in `gemm_tile_4x8` — `use_simd` is only true after the
        // runtime AVX2 probe succeeded, and the kernel touches the same
        // bounds-checked slice ranges as the scalar fallback below.
        unsafe {
            avx2::gemm_t_tile_4x8(a, a_cols, i, b, n, j, k_dim, acc);
        }
        return;
    }
    let _ = use_simd;
    for k in 0..k_dim {
        let (Ok(a_strip), Ok(b_strip)) = (
            <&[f32; TILE_M]>::try_from(&a[k * a_cols + i..k * a_cols + i + TILE_M]),
            <&[f32; TILE_N]>::try_from(&b[k * n + j..k * n + j + TILE_N]),
        ) else {
            // Both slices are tile-width by construction; skip the strip
            // rather than panic inside the GEMM.
            debug_assert!(false, "strips are tile width");
            continue;
        };
        for (acc_row, &av) in acc.iter_mut().zip(a_strip.iter()) {
            for (o, &bv) in acc_row.iter_mut().zip(b_strip.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Exact `i8 x i8 -> i32` dot product for the int8 serving path.
///
/// Integer accumulation has no rounding, so the AVX2 widening path and the
/// scalar loop are equal by construction, not merely bit-pinned.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8 length mismatch");
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` returned true only after the runtime AVX2
        // probe succeeded; the kernel reads 16-byte chunks strictly inside
        // `a`/`b` via chunk iterators and handles the tail in scalar code.
        return unsafe { avx2::dot_i8(a, b) };
    }
    dot_i8_scalar(a, b)
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum()
}

/// Four exact `i8 x i8 -> i32` dot products sharing one right-hand vector —
/// the int8 serving hot path (four gate rows against one activation row).
/// Sharing `b`'s loads across the four rows and fusing the four horizontal
/// sums is what buys the serving throughput target; results are identical
/// to four [`dot_i8`] calls. `use_simd` is hoisted by the caller so the
/// dispatch check is not paid per dot product.
///
/// # Panics
///
/// Panics if any row's length differs from `b`'s.
#[inline]
pub fn dot_i8_x4(rows: &[&[i8]; 4], b: &[i8], use_simd: bool) -> [i32; 4] {
    for r in rows {
        assert_eq!(r.len(), b.len(), "dot_i8_x4 length mismatch");
    }
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: `use_simd` is only true after the runtime AVX2 probe
        // succeeded; the kernel reads 16-byte chunks strictly inside the
        // equal-length slices and handles the tail in scalar code.
        return unsafe { avx2::dot_i8_x4(rows, b) };
    }
    let _ = use_simd;
    [
        dot_i8_scalar(rows[0], b),
        dot_i8_scalar(rows[1], b),
        dot_i8_scalar(rows[2], b),
        dot_i8_scalar(rows[3], b),
    ]
}

/// Exact int8 matrix-vector product: `out[r] = dot_i8(w row r, h)` for a
/// row-major `out.len() x cols` weight matrix. The serving recurrence calls
/// this once per (timestep, sequence) so the widened `h` chunks are shared
/// across *all* gate rows, not re-converted per 4-row block.
///
/// # Panics
///
/// Panics if `w.len() != out.len() * cols`, `h.len() != cols`, or
/// `out.len()` is not a multiple of 4.
pub fn matvec_i8(w: &[i8], cols: usize, h: &[i8], out: &mut [i32], use_simd: bool) {
    let rows = out.len();
    assert_eq!(w.len(), rows * cols, "matvec_i8 weight length mismatch");
    assert_eq!(h.len(), cols, "matvec_i8 vector length mismatch");
    assert_eq!(rows % 4, 0, "matvec_i8 rows must be a multiple of 4");
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        if cols / 16 <= avx2::MAX_WIDEN_CHUNKS {
            // SAFETY: `use_simd` is only true after the runtime AVX2 probe
            // succeeded; lengths were asserted above and the kernel stays
            // inside them (see its SAFETY comment).
            unsafe { avx2::matvec_i8(w, cols, h, out) };
            return;
        }
        for (rb, o4) in out.chunks_exact_mut(4).enumerate() {
            let base = rb * 4 * cols;
            let w4: [&[i8]; 4] =
                std::array::from_fn(|t| &w[base + t * cols..base + (t + 1) * cols]);
            // SAFETY: as above — AVX2 was probed and slice lengths match.
            o4.copy_from_slice(&unsafe { avx2::dot_i8_x4(&w4, h) });
        }
        return;
    }
    let _ = use_simd;
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot_i8_scalar(&w[r * cols..(r + 1) * cols], h);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 implementations. Every function is `unsafe` solely because of
    //! `#[target_feature]`; callers must have verified AVX2 support.

    use crate::matrix::{TILE_M, TILE_N};
    use core::arch::x86_64::{
        __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_cvtepi8_epi16,
        _mm256_extracti128_si256, _mm256_hadd_epi32, _mm256_loadu_ps, _mm256_madd_epi16,
        _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_si256, _mm256_storeu_ps, _mm_add_epi32,
        _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32, _mm_storeu_si128,
        _mm_unpackhi_epi64,
    };

    // SAFETY: callers guarantee AVX2 is available (checked at dispatch).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_tile_4x8(
        a_rows: &[&[f32]; TILE_M],
        b: &[f32],
        n: usize,
        j: usize,
        k_dim: usize,
        acc: &mut [[f32; TILE_N]; TILE_M],
    ) {
        // SAFETY: each `acc` row is 8 contiguous f32s, a valid unaligned
        // load/store target; `b[k * n + j ..][..8]` is in bounds because the
        // caller's tile walk guarantees `j + TILE_N <= n` and `k < k_dim`.
        unsafe {
            let mut acc_v: [__m256; TILE_M] =
                std::array::from_fn(|t| _mm256_loadu_ps(acc[t].as_ptr()));
            for k in 0..k_dim {
                let b_strip = _mm256_loadu_ps(b.as_ptr().add(k * n + j));
                for (av, a_row) in acc_v.iter_mut().zip(a_rows.iter()) {
                    let a_bcast = _mm256_set1_ps(*a_row.get_unchecked(k));
                    // mul then add, never fmadd: two roundings, exactly like
                    // the scalar `*o += av * bv`.
                    *av = _mm256_add_ps(*av, _mm256_mul_ps(a_bcast, b_strip));
                }
            }
            for (row, av) in acc.iter_mut().zip(acc_v.iter()) {
                _mm256_storeu_ps(row.as_mut_ptr(), *av);
            }
        }
    }

    // SAFETY: callers guarantee AVX2 is available (checked at dispatch).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_t_tile_4x8(
        a: &[f32],
        a_cols: usize,
        i: usize,
        b: &[f32],
        n: usize,
        j: usize,
        k_dim: usize,
        acc: &mut [[f32; TILE_N]; TILE_M],
    ) {
        // The caller's tile walk guarantees `i + TILE_M <= a_cols` and
        // `j + TILE_N <= n` for every `k < k_dim`.
        // SAFETY: all pointer arithmetic below therefore stays inside
        // `a` / `b`; `acc` rows are 8 contiguous f32s as above.
        unsafe {
            let mut acc_v: [__m256; TILE_M] =
                std::array::from_fn(|t| _mm256_loadu_ps(acc[t].as_ptr()));
            for k in 0..k_dim {
                let b_strip = _mm256_loadu_ps(b.as_ptr().add(k * n + j));
                let a_base = k * a_cols + i;
                for (t, av) in acc_v.iter_mut().enumerate() {
                    let a_bcast = _mm256_set1_ps(*a.get_unchecked(a_base + t));
                    *av = _mm256_add_ps(*av, _mm256_mul_ps(a_bcast, b_strip));
                }
            }
            for (row, av) in acc.iter_mut().zip(acc_v.iter()) {
                _mm256_storeu_ps(row.as_mut_ptr(), *av);
            }
        }
    }

    // SAFETY: callers guarantee AVX2 is available (checked at dispatch).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let chunks = a.len() / 16;
        // SAFETY: the loop reads exactly `chunks * 16` bytes from each
        // slice (`idx + 16 <= a.len()` by construction); the remainder is
        // summed by safe scalar code below.
        let mut acc = unsafe {
            let mut acc = _mm256_setzero_si256();
            for c in 0..chunks {
                let idx = c * 16;
                let av = _mm_loadu_si128(a.as_ptr().add(idx) as *const __m128i);
                let bv = _mm_loadu_si128(b.as_ptr().add(idx) as *const __m128i);
                // Widen i8 -> i16 (exact), multiply-add adjacent pairs into
                // i32 (|a|,|b| <= 127 so each pair product sum <= 32258,
                // far inside i16*i16 -> i32 range). Integer adds are
                // associative, so lane order cannot matter.
                let prod = _mm256_madd_epi16(_mm256_cvtepi8_epi16(av), _mm256_cvtepi8_epi16(bv));
                acc = _mm256_add_epi32(acc, prod);
            }
            horizontal_sum_i32(acc)
        };
        for idx in chunks * 16..a.len() {
            acc += a[idx] as i32 * b[idx] as i32;
        }
        acc
    }

    // SAFETY: callers guarantee AVX2 is available (checked at dispatch).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_x4(rows: &[&[i8]; 4], b: &[i8]) -> [i32; 4] {
        let chunks = b.len() / 16;
        // SAFETY: the caller asserted all four rows equal `b` in length and
        // the loop reads exactly `chunks * 16 <= b.len()` bytes from each;
        // `out` is 4 contiguous i32s, a valid unaligned store target.
        let mut out = unsafe {
            let mut acc = [_mm256_setzero_si256(); 4];
            for c in 0..chunks {
                let idx = c * 16;
                let bv =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(idx) as *const __m128i));
                for (a, row) in acc.iter_mut().zip(rows.iter()) {
                    let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        row.as_ptr().add(idx) as *const __m128i
                    ));
                    *a = _mm256_add_epi32(*a, _mm256_madd_epi16(av, bv));
                }
            }
            // Fused 4-way horizontal sum: two hadd rounds interleave the
            // per-accumulator partial sums per 128-bit lane, the cross-lane
            // add finishes all four reductions at once.
            let t0 = _mm256_hadd_epi32(acc[0], acc[1]);
            let t1 = _mm256_hadd_epi32(acc[2], acc[3]);
            let t2 = _mm256_hadd_epi32(t0, t1);
            let sums = _mm_add_epi32(
                _mm256_extracti128_si256::<0>(t2),
                _mm256_extracti128_si256::<1>(t2),
            );
            let mut out = [0i32; 4];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, sums);
            out
        };
        for idx in chunks * 16..b.len() {
            for (o, row) in out.iter_mut().zip(rows.iter()) {
                *o += row[idx] as i32 * b[idx] as i32;
            }
        }
        out
    }

    /// Widened-activation buffer bound for [`matvec_i8`]: up to
    /// `64 * 16 = 1024` int8 columns pre-converted on the stack (2 KiB).
    /// Wider products fall back to the per-block kernel at dispatch.
    pub const MAX_WIDEN_CHUNKS: usize = 64;

    // SAFETY: callers guarantee AVX2 is available (checked at dispatch).
    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_i8(w: &[i8], cols: usize, h: &[i8], out: &mut [i32]) {
        let chunks = cols / 16;
        debug_assert!(chunks <= MAX_WIDEN_CHUNKS);
        // The dispatcher asserted `w.len() == out.len() * cols`,
        // `h.len() == cols`, `out.len() % 4 == 0` and `chunks <=
        // MAX_WIDEN_CHUNKS`; the `cols % 16` tail is handled by safe code.
        // SAFETY: every pointer below therefore stays inside those bounds
        // (`c * 16 + 16 <= cols`, `base + t * cols + cols <= w.len()`).
        unsafe {
            // Widen the shared activation row once.
            let mut hw = [_mm256_setzero_si256(); MAX_WIDEN_CHUNKS];
            for (c, slot) in hw.iter_mut().enumerate().take(chunks) {
                *slot =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(h.as_ptr().add(c * 16) as *const __m128i));
            }
            for (rb, o4) in out.chunks_exact_mut(4).enumerate() {
                let base = rb * 4 * cols;
                let mut acc = [_mm256_setzero_si256(); 4];
                for (c, &hv) in hw.iter().enumerate().take(chunks) {
                    let idx = c * 16;
                    for (t, a) in acc.iter_mut().enumerate() {
                        let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            w.as_ptr().add(base + t * cols + idx) as *const __m128i,
                        ));
                        *a = _mm256_add_epi32(*a, _mm256_madd_epi16(wv, hv));
                    }
                }
                let t0 = _mm256_hadd_epi32(acc[0], acc[1]);
                let t1 = _mm256_hadd_epi32(acc[2], acc[3]);
                let t2 = _mm256_hadd_epi32(t0, t1);
                let sums = _mm_add_epi32(
                    _mm256_extracti128_si256::<0>(t2),
                    _mm256_extracti128_si256::<1>(t2),
                );
                let mut four = [0i32; 4];
                _mm_storeu_si128(four.as_mut_ptr() as *mut __m128i, sums);
                for idx in chunks * 16..cols {
                    for (t, o) in four.iter_mut().enumerate() {
                        *o += w[base + t * cols + idx] as i32 * h[idx] as i32;
                    }
                }
                o4.copy_from_slice(&four);
            }
        }
    }

    // SAFETY: callers guarantee AVX2 is available (checked at dispatch);
    // the body is pure register shuffles and adds, no memory access.
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum_i32(v: __m256i) -> i32 {
        let lo = _mm256_extracti128_si256::<0>(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let sum128 = _mm_add_epi32(lo, hi);
        let sum64 = _mm_add_epi32(sum128, _mm_unpackhi_epi64(sum128, sum128));
        let sum32 = _mm_add_epi32(sum64, _mm_shuffle_epi32::<0b01>(sum64));
        _mm_cvtsi128_si32(sum32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_simd_restores_override() {
        let auto = enabled();
        with_simd(false, || {
            assert!(!enabled(), "override must force the scalar path");
            with_simd(true, || assert_eq!(enabled(), auto));
            assert!(!enabled());
        });
        assert_eq!(enabled(), auto);
    }

    #[test]
    fn with_simd_restores_override_on_panic() {
        let before = enabled();
        let result = std::panic::catch_unwind(|| with_simd(false, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(enabled(), before);
    }

    #[test]
    fn gemm_tile_matches_scalar_bitwise() {
        for k_dim in 1..=17usize {
            let a_data: Vec<Vec<f32>> = (0..TILE_M)
                .map(|t| {
                    (0..k_dim)
                        .map(|k| ((t * 31 + k * 7) % 13) as f32 * 0.17 - 0.7)
                        .collect()
                })
                .collect();
            let a_rows: [&[f32]; TILE_M] = std::array::from_fn(|t| a_data[t].as_slice());
            let n = TILE_N + 3;
            let b: Vec<f32> = (0..k_dim * n)
                .map(|x| ((x * 11) % 23) as f32 * 0.09 - 1.0)
                .collect();
            let mut scalar = [[0.0f32; TILE_N]; TILE_M];
            gemm_tile_4x8(&a_rows, &b, n, 0, k_dim, &mut scalar, false);
            let mut simd = [[0.0f32; TILE_N]; TILE_M];
            gemm_tile_4x8(&a_rows, &b, n, 0, k_dim, &mut simd, enabled());
            assert_eq!(scalar, simd, "k_dim = {k_dim}");
        }
    }

    #[test]
    fn gemm_t_tile_matches_scalar_bitwise() {
        for k_dim in 1..=17usize {
            let a_cols = TILE_M + 2;
            let a: Vec<f32> = (0..k_dim * a_cols)
                .map(|x| ((x * 5) % 19) as f32 * 0.13 - 0.9)
                .collect();
            let n = 2 * TILE_N;
            let b: Vec<f32> = (0..k_dim * n)
                .map(|x| ((x * 3) % 29) as f32 * 0.07 - 1.1)
                .collect();
            let mut scalar = [[0.0f32; TILE_N]; TILE_M];
            gemm_t_tile_4x8(&a, a_cols, 1, &b, n, TILE_N, k_dim, &mut scalar, false);
            let mut simd = [[0.0f32; TILE_N]; TILE_M];
            gemm_t_tile_4x8(&a, a_cols, 1, &b, n, TILE_N, k_dim, &mut simd, enabled());
            assert_eq!(scalar, simd, "k_dim = {k_dim}");
        }
    }

    #[test]
    fn dot_i8_matches_scalar_on_all_tail_lengths() {
        for len in 0..64usize {
            let a: Vec<i8> = (0..len).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| ((i * 91 + 5) % 255) as i8).collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "len = {len}");
        }
    }

    #[test]
    fn dot_i8_x4_matches_four_single_dots_on_all_tail_lengths() {
        for len in 0..64usize {
            let rows_data: Vec<Vec<i8>> = (0..4)
                .map(|r| {
                    (0..len)
                        .map(|i| ((i * 37 + r * 13 + 11) % 255) as i8)
                        .collect()
                })
                .collect();
            let rows: [&[i8]; 4] = std::array::from_fn(|r| rows_data[r].as_slice());
            let b: Vec<i8> = (0..len).map(|i| ((i * 91 + 5) % 255) as i8).collect();
            let expect: [i32; 4] = std::array::from_fn(|r| dot_i8_scalar(rows[r], &b));
            assert_eq!(dot_i8_x4(&rows, &b, false), expect, "scalar len = {len}");
            assert_eq!(dot_i8_x4(&rows, &b, enabled()), expect, "simd len = {len}");
        }
    }

    #[test]
    fn matvec_i8_matches_scalar_for_all_widths_and_the_wide_fallback() {
        // 0..40 sweeps the tail lengths; 1040 (> 64 chunks) exercises the
        // per-block fallback at dispatch.
        for cols in (0..40usize).chain([1024, 1040]) {
            for rows in [4usize, 8, 12] {
                let w: Vec<i8> = (0..rows * cols)
                    .map(|i| ((i * 23 + 7) % 255) as i8)
                    .collect();
                let h: Vec<i8> = (0..cols).map(|i| ((i * 91 + 5) % 255) as i8).collect();
                let mut scalar = vec![0i32; rows];
                matvec_i8(&w, cols, &h, &mut scalar, false);
                let expect: Vec<i32> = (0..rows)
                    .map(|r| dot_i8_scalar(&w[r * cols..(r + 1) * cols], &h))
                    .collect();
                assert_eq!(scalar, expect, "scalar rows={rows} cols={cols}");
                let mut simd = vec![0i32; rows];
                matvec_i8(&w, cols, &h, &mut simd, enabled());
                assert_eq!(simd, expect, "simd rows={rows} cols={cols}");
            }
        }
    }

    #[test]
    fn dot_i8_saturating_extremes() {
        let a = vec![i8::MIN; 100];
        let b = vec![i8::MIN; 100];
        assert_eq!(dot_i8(&a, &b), 100 * 128 * 128);
        let c = vec![i8::MAX; 100];
        assert_eq!(dot_i8(&a, &c), 100 * -128 * 127);
    }
}
