//! A fully-connected projection layer, applied independently per timestep.
//! Used as the classification head on top of the LSTM (Table III: `FC` +
//! `Softmax`).

use rand::rngs::StdRng;

use crate::matrix::{dot, Matrix};

/// Linear layer `y = W x + b` with `W`: O×I.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, O x I.
    pub w: Matrix,
    /// Bias, length O.
    pub b: Vec<f32>,
}

/// Gradients for a [`Dense`] layer.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// d/dW, O x I.
    pub w: Matrix,
    /// d/db, length O.
    pub b: Vec<f32>,
}

impl Dense {
    /// Creates a Xavier-initialized dense layer mapping `input` features to
    /// `output` logits.
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        Dense {
            w: Matrix::xavier(output, input, rng),
            b: vec![0.0; output],
        }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn output_size(&self) -> usize {
        self.w.rows()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Applies the layer to one feature vector.
    pub fn forward_one(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.w.cols(), "dense input width mismatch");
        (0..self.w.rows())
            .map(|o| dot(self.w.row(o), x) + self.b[o])
            .collect()
    }

    /// Applies the layer to every row of `xs` (T x I) producing T x O logits.
    pub fn forward(&self, xs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.forward_into(xs, &mut out);
        out
    }

    /// In-place variant of [`Dense::forward`]: writes the logits into `out`,
    /// resizing it (allocation-free once warm). Bitwise identical to the
    /// allocating path — per element the same `dot + b` in the same order.
    pub fn forward_into(&self, xs: &Matrix, out: &mut Matrix) {
        assert_eq!(xs.cols(), self.w.cols(), "dense input width mismatch");
        out.resize_zeroed(xs.rows(), self.w.rows());
        for t in 0..xs.rows() {
            let x = xs.row(t);
            for (o, slot) in out.row_mut(t).iter_mut().enumerate() {
                *slot = dot(self.w.row(o), x) + self.b[o];
            }
        }
    }

    /// Backward pass: given inputs `xs` (T x I) and upstream logit gradients
    /// `dlogits` (T x O), returns parameter grads and `dxs` (T x I).
    pub fn backward(&self, xs: &Matrix, dlogits: &Matrix) -> (DenseGrads, Matrix) {
        let mut grads = DenseGrads::empty();
        let mut dxs = Matrix::zeros(1, 1);
        self.backward_into(xs, dlogits, &mut grads, &mut dxs);
        (grads, dxs)
    }

    /// In-place variant of [`Dense::backward`]: reshapes and fills `grads`
    /// and `dxs`, performing no allocation once warm. Bitwise identical to
    /// [`Dense::backward`].
    pub fn backward_into(
        &self,
        xs: &Matrix,
        dlogits: &Matrix,
        grads: &mut DenseGrads,
        dxs: &mut Matrix,
    ) {
        assert_eq!(
            xs.rows(),
            dlogits.rows(),
            "dense backward timestep mismatch"
        );
        assert_eq!(
            dlogits.cols(),
            self.w.rows(),
            "dense backward width mismatch"
        );
        // dW = dlogits^T * xs ; db = column sums of dlogits ; dx = dlogits * W
        self.param_grads_into(xs, dlogits, grads);
        dlogits.matmul_into(&self.w, dxs);
    }

    /// Parameter gradients only: `dW = dlogits^T * xs` (ascending-`t` row
    /// scan) and `db` as ascending-`t` column sums. Factored out of
    /// [`Dense::backward_into`] so the batch-packed training path can
    /// compute per-example head gradients from matrices extracted out of
    /// packed tensors while sharing the exact accumulation order.
    pub fn param_grads_into(&self, xs: &Matrix, dlogits: &Matrix, grads: &mut DenseGrads) {
        dlogits.t_matmul_into(xs, &mut grads.w);
        grads.b.clear();
        grads.b.resize(self.w.rows(), 0.0);
        for t in 0..dlogits.rows() {
            for (bg, &d) in grads.b.iter_mut().zip(dlogits.row(t)) {
                *bg += d;
            }
        }
    }
}

impl DenseGrads {
    /// A placeholder gradient set ready to be shaped by
    /// [`Dense::backward_into`].
    pub fn empty() -> Self {
        DenseGrads {
            w: Matrix::zeros(1, 1),
            // cold-init: shaped once by backward_into, then reused. lint: allow(A1)
            b: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        d.b = vec![0.5, -0.5];
        let y = d.forward_one(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Dense::new(3, 2, &mut rng);
        let xs = Matrix::from_rows(&[&[0.2, -0.4, 0.6], &[0.9, 0.1, -0.3]]);
        // Objective: sum of all logits => dlogits = 1.
        let dl = Matrix::filled(2, 2, 1.0);
        let (grads, dxs) = d.backward(&xs, &dl);
        let obj = |d: &Dense| d.forward(&xs).sum();
        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 0usize), (1, 2)] {
            let mut dp = d.clone();
            dp.w[(r, c)] += eps;
            let mut dm = d.clone();
            dm.w[(r, c)] -= eps;
            let fd = (obj(&dp) - obj(&dm)) / (2.0 * eps);
            assert!((grads.w[(r, c)] - fd).abs() < 1e-2);
        }
        for j in 0..2 {
            let mut dp = d.clone();
            dp.b[j] += eps;
            let mut dm = d.clone();
            dm.b[j] -= eps;
            let fd = (obj(&dp) - obj(&dm)) / (2.0 * eps);
            assert!((grads.b[j] - fd).abs() < 1e-2);
        }
        // dx check
        for &(t, c) in &[(0usize, 1usize), (1, 0)] {
            let mut xp = xs.clone();
            xp[(t, c)] += eps;
            let mut xm = xs.clone();
            xm[(t, c)] -= eps;
            let fd = (d.forward(&xp).sum() - d.forward(&xm).sum()) / (2.0 * eps);
            assert!((dxs[(t, c)] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dense::new(4, 3, &mut rng);
        assert_eq!(d.param_count(), 12 + 3);
    }
}
