//! Reusable training workspaces.
//!
//! [`SequenceClassifier::fit`](crate::seq::SequenceClassifier::fit) used to
//! allocate every forward activation, gate buffer, gradient matrix and
//! softmax scratch vector afresh for every example of every epoch (~24 sites
//! in the LSTM alone). A [`Workspace`] owns all of those buffers; the `_into`
//! kernels in [`matrix`](crate::matrix), [`lstm`](crate::lstm),
//! [`dense`](crate::dense) and [`loss`](crate::loss) resize-and-fill them in
//! place, so the steady-state epoch loop performs no heap allocation.
//!
//! Workspaces are recycled through a [`WorkspacePool`] — a mutex-protected
//! free list — rather than thread-locals, because [`crate::par::par_map`]
//! dispatches to shared pool workers whose thread-local storage would
//! leak buffers across unrelated callers. Every pass fully overwrites whatever buffer
//! state it later reads, so results never depend on *which* workspace an
//! example happens to draw, keeping training bitwise thread-count invariant.

use std::sync::Mutex;

use crate::dense::DenseGrads;
use crate::lstm::{LstmCache, LstmGrads, LstmScratch};
use crate::matrix::Matrix;

/// Every buffer one example's forward/backward pass needs, preallocated and
/// reusable across examples of any sequence length.
#[derive(Debug)]
pub struct Workspace {
    /// Per-layer forward caches.
    pub(crate) caches: Vec<LstmCache>,
    /// Shared temporaries for the fused LSTM kernels.
    pub(crate) scratch: LstmScratch,
    /// Per-layer parameter gradients (outputs of the pass).
    pub(crate) layer_grads: Vec<LstmGrads>,
    /// Head parameter gradients (output of the pass).
    pub(crate) head_grads: DenseGrads,
    /// Softmax probability scratch for one timestep.
    pub(crate) probs: Vec<f32>,
    /// Loss per unmasked timestep, in timestep order (output of the pass).
    pub(crate) losses: Vec<f32>,
    /// Correctly predicted unmasked timesteps (output of the pass).
    pub(crate) correct: usize,
}

impl Workspace {
    /// A cold workspace for a stack of `layer_count` LSTM layers; every
    /// buffer grows on first use and is then reused.
    pub fn new(layer_count: usize) -> Self {
        Workspace {
            caches: (0..layer_count).map(|_| LstmCache::empty()).collect(),
            scratch: LstmScratch::new(),
            layer_grads: (0..layer_count).map(|_| LstmGrads::empty()).collect(),
            head_grads: DenseGrads::empty(),
            probs: Vec::new(),
            losses: Vec::new(),
            correct: 0,
        }
    }

    /// Number of LSTM layers this workspace is shaped for.
    pub fn layer_count(&self) -> usize {
        self.caches.len()
    }
}

/// A free list of [`Workspace`]s shared by the training workers.
///
/// At most one workspace per in-flight example exists; once the pool is warm
/// no pass allocates. `acquire`/`release` take a mutex, but the critical
/// section is a `Vec` pop/push — nanoseconds against the milliseconds of a
/// BPTT pass.
#[derive(Debug)]
pub struct WorkspacePool {
    free: Mutex<Vec<Workspace>>,
    layer_count: usize,
}

impl WorkspacePool {
    /// An empty pool for classifiers with `layer_count` LSTM layers.
    pub fn new(layer_count: usize) -> Self {
        WorkspacePool {
            free: Mutex::new(Vec::new()),
            layer_count,
        }
    }

    /// Pops a warm workspace, or builds a cold one when the pool is empty.
    pub fn acquire(&self) -> Workspace {
        let ws = self.free.lock().expect("workspace pool poisoned").pop();
        ws.unwrap_or_else(|| Workspace::new(self.layer_count))
    }

    /// Returns a workspace to the free list for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the workspace was shaped for a different layer count.
    pub fn release(&self, ws: Workspace) {
        assert_eq!(
            ws.layer_count(),
            self.layer_count,
            "workspace layer count mismatch"
        );
        self.free.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }
}

/// Buffers for one packed bucket of equal-length sequences in the batched
/// training path: every tensor is batch-major, row `t * B + b` holding
/// sequence `b`'s timestep `t`. One batch workspace serves buckets of any
/// size and length because each pass fully overwrites what it reads, just
/// like [`Workspace`].
#[derive(Debug)]
pub struct BatchWorkspace {
    /// Packed input features, (T*B) x I.
    pub(crate) xs: Matrix,
    /// Per-layer packed forward caches.
    pub(crate) caches: Vec<LstmCache>,
    /// Shared temporaries for the batched LSTM kernels.
    pub(crate) scratch: LstmScratch,
    /// Packed head logits, (T*B) x classes.
    pub(crate) logits: Matrix,
    /// Packed loss gradient on the logits, (T*B) x classes.
    pub(crate) dlogits: Matrix,
    /// Packed upstream hidden-state gradient walking down the stack.
    pub(crate) dh: Matrix,
    /// Packed input gradient produced by the current layer.
    pub(crate) dx: Matrix,
    /// Packed gate deltas of the current layer, (T*B) x 4H.
    pub(crate) da_packed: Matrix,
    /// Per-example extraction buffers (reused serially across the bucket):
    /// gate deltas (T x 4H), layer inputs (T x I) and hidden states (T x H)
    /// of the example whose parameter gradients are being accumulated.
    pub(crate) da_ex: Matrix,
    pub(crate) x_ex: Matrix,
    pub(crate) h_ex: Matrix,
}

impl BatchWorkspace {
    /// A cold batch workspace for a stack of `layer_count` LSTM layers.
    pub fn new(layer_count: usize) -> Self {
        BatchWorkspace {
            xs: Matrix::zeros(1, 1),
            caches: (0..layer_count).map(|_| LstmCache::empty()).collect(),
            scratch: LstmScratch::new(),
            logits: Matrix::zeros(1, 1),
            dlogits: Matrix::zeros(1, 1),
            dh: Matrix::zeros(1, 1),
            dx: Matrix::zeros(1, 1),
            da_packed: Matrix::zeros(1, 1),
            da_ex: Matrix::zeros(1, 1),
            x_ex: Matrix::zeros(1, 1),
            h_ex: Matrix::zeros(1, 1),
        }
    }

    /// Number of LSTM layers this workspace is shaped for.
    pub fn layer_count(&self) -> usize {
        self.caches.len()
    }
}

/// A free list of [`BatchWorkspace`]s shared by the bucket workers, same
/// recycling discipline as [`WorkspacePool`].
#[derive(Debug)]
pub struct BatchWorkspacePool {
    free: Mutex<Vec<BatchWorkspace>>,
    layer_count: usize,
}

impl BatchWorkspacePool {
    /// An empty pool for classifiers with `layer_count` LSTM layers.
    pub fn new(layer_count: usize) -> Self {
        BatchWorkspacePool {
            free: Mutex::new(Vec::new()),
            layer_count,
        }
    }

    /// Pops a warm batch workspace, or builds a cold one when the pool is
    /// empty.
    pub fn acquire(&self) -> BatchWorkspace {
        let ws = self
            .free
            .lock()
            .expect("batch workspace pool poisoned")
            .pop();
        ws.unwrap_or_else(|| BatchWorkspace::new(self.layer_count))
    }

    /// Returns a batch workspace to the free list for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the workspace was shaped for a different layer count.
    pub fn release(&self, ws: BatchWorkspace) {
        assert_eq!(
            ws.layer_count(),
            self.layer_count,
            "batch workspace layer count mismatch"
        );
        self.free
            .lock()
            .expect("batch workspace pool poisoned")
            .push(ws);
    }

    /// Number of idle batch workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.free
            .lock()
            .expect("batch workspace pool poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_pool_recycles_workspaces() {
        let pool = BatchWorkspacePool::new(1);
        assert_eq!(pool.idle(), 0);
        let a = pool.acquire();
        assert_eq!(a.layer_count(), 1);
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        let _b = pool.acquire();
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_recycles_workspaces() {
        let pool = WorkspacePool::new(2);
        assert_eq!(pool.idle(), 0);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(a.layer_count(), 2);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.acquire();
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn pool_rejects_foreign_workspace() {
        let pool = WorkspacePool::new(2);
        pool.release(Workspace::new(3));
    }
}
