//! Per-timestep sequence classifier: stacked LSTM layers, a dense head and a
//! (weighted, maskable) softmax cross-entropy loss — the shape shared by all
//! five inference models in the paper's Table III.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::activation::argmax;
use crate::data::SeqExample;
use crate::dense::{Dense, DenseGrads};
use crate::loss::{softmax_cross_entropy, softmax_cross_entropy_into, uniform_weights};
use crate::lstm::{LstmGrads, LstmLayer};
use crate::matrix::Matrix;
use crate::optim::{clip_global_norm, Adam, Optimizer};
use crate::workspace::{BatchWorkspace, BatchWorkspacePool, Workspace, WorkspacePool};

// All work-size gates live in one audited module (leaky-lint rule A4);
// re-exported here so the historical `ml::seq::MIN_PARALLEL_FIT_SEQS` path
// keeps working.
pub use crate::par::thresholds::MIN_PARALLEL_FIT_SEQS;

/// Training/topology configuration for a [`SequenceClassifier`].
#[derive(Debug, Clone)]
pub struct SeqClassifierConfig {
    /// Feature width per timestep.
    pub input_size: usize,
    /// Hidden sizes of the stacked LSTM layers (Table III uses `[256]` for
    /// Mlong/Mop/Vlong/Vop and `[128]` for Mhp).
    pub hidden_sizes: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs over the full dataset.
    pub epochs: usize,
    /// Global-norm gradient clip.
    pub clip_norm: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
    /// Per-class loss weights; `None` = uniform.
    pub class_weights: Option<Vec<f32>>,
    /// Examples per Adam step. Per-example BPTT within a batch runs on the
    /// worker pool and the batch-mean gradient takes one optimizer step.
    /// `1` (the default) reproduces the classic per-example schedule
    /// exactly; larger batches trade schedule for step stability and
    /// parallel speedup. The result is identical for any thread count.
    pub batch_size: usize,
}

impl SeqClassifierConfig {
    /// A reasonable default for a given problem shape.
    pub fn new(input_size: usize, hidden: usize, classes: usize) -> Self {
        SeqClassifierConfig {
            input_size,
            hidden_sizes: vec![hidden],
            classes,
            learning_rate: 0.01,
            epochs: 12,
            clip_norm: 5.0,
            seed: 0x5eed,
            class_weights: None,
            batch_size: 1,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean loss over unmasked timesteps.
    pub mean_loss: f32,
    /// Accuracy over unmasked timesteps.
    pub accuracy: f64,
}

/// An LSTM sequence classifier producing one class per timestep.
///
/// # Examples
///
/// ```
/// use ml::seq::{SeqClassifierConfig, SequenceClassifier};
/// use ml::data::SeqExample;
///
/// // Learn "label = which half of the 2-dim input is hot".
/// let mut cfg = SeqClassifierConfig::new(2, 8, 2);
/// cfg.epochs = 30;
/// let data: Vec<SeqExample> = (0..8)
///     .map(|i| {
///         let lab = i % 2;
///         let mut f = vec![0.0, 0.0];
///         f[lab] = 1.0;
///         SeqExample::new(vec![f; 5], vec![lab; 5])
///     })
///     .collect();
/// let mut clf = SequenceClassifier::new(cfg);
/// clf.fit(&data);
/// let pred = clf.predict(&data[0].features);
/// assert_eq!(pred, data[0].labels);
/// ```
#[derive(Debug, Clone)]
pub struct SequenceClassifier {
    config: SeqClassifierConfig,
    layers: Vec<LstmLayer>,
    head: Dense,
    history: Vec<EpochStats>,
}

/// Gradients and loss statistics from one example's forward/backward pass.
struct ExamplePass {
    layer_grads: Vec<crate::lstm::LstmGrads>,
    head_grads: crate::dense::DenseGrads,
    /// Loss per unmasked timestep, in timestep order.
    losses: Vec<f32>,
    correct: usize,
}

/// Per-parameter Adam states for one [`SequenceClassifier::fit`] run,
/// grouped so the epoch loop can borrow them apart from the model.
struct FitOptimizers {
    wx: Vec<Adam>,
    wh: Vec<Adam>,
    b: Vec<Adam>,
    hw: Adam,
    hb: Adam,
}

/// Reused gradient accumulators and bucketing scratch for
/// [`SequenceClassifier::fit_epoch`]; allocated once per `fit` call and
/// threaded through every epoch.
struct FitScratch {
    acc_layers: Vec<LstmGrads>,
    acc_head: DenseGrads,
    len_pos: Vec<(usize, usize)>,
    bucket_spans: Vec<(usize, usize)>,
    slots: Vec<Option<Workspace>>,
}

impl SequenceClassifier {
    /// Builds an untrained classifier from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no hidden layers or zero classes.
    pub fn new(config: SeqClassifierConfig) -> Self {
        assert!(
            !config.hidden_sizes.is_empty(),
            "need at least one LSTM layer"
        );
        assert!(config.classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::new();
        let mut in_size = config.input_size;
        for &h in &config.hidden_sizes {
            layers.push(LstmLayer::new(in_size, h, &mut rng));
            in_size = h;
        }
        let head = Dense::new(in_size, config.classes, &mut rng);
        SequenceClassifier {
            config,
            layers,
            head,
            history: Vec::new(),
        }
    }

    /// The configuration this classifier was built with.
    pub fn config(&self) -> &SeqClassifierConfig {
        &self.config
    }

    /// The trained LSTM stack (crate-internal: the [`crate::quant`]
    /// post-training pass reads the weights to build its int8 twin).
    pub(crate) fn layers(&self) -> &[LstmLayer] {
        &self.layers
    }

    /// The trained classification head (crate-internal, see
    /// [`SequenceClassifier::layers`]).
    pub(crate) fn head(&self) -> &Dense {
        &self.head
    }

    /// Per-epoch loss/accuracy recorded by the last `fit` call.
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(LstmLayer::param_count)
            .sum::<usize>()
            + self.head.param_count()
    }

    fn features_to_matrix(features: &[Vec<f32>]) -> Matrix {
        assert!(!features.is_empty(), "empty sequence");
        let mut m = Matrix::zeros(features.len(), features[0].len());
        for (t, f) in features.iter().enumerate() {
            m.set_row(t, f);
        }
        m
    }

    /// Full forward + backward pass for one packed bucket of equal-length
    /// examples against frozen parameters.
    ///
    /// The bucket's sequences are laid out batch-major in `bws` (row
    /// `t * B + b` holds sequence `b`'s timestep `t`), so every timestep of
    /// the forward recurrence, the head, and the BPTT carry runs as one
    /// fused GEMM over the whole bucket instead of `B` per-sequence matvec
    /// loops. Each example's losses and gradients come back in its own
    /// pooled [`Workspace`] (tagged with its batch position), bitwise
    /// identical to running that example through the per-sequence pass
    /// alone: packed GEMM rows are independent and keep the ascending-`k`
    /// per-element chains, and parameter gradients are accumulated from
    /// per-example matrices extracted out of the packed tensors through the
    /// exact same code path ([`LstmLayer::param_grads_into`] /
    /// [`Dense::param_grads_into`]) the per-sequence backward uses.
    #[allow(clippy::too_many_arguments)]
    fn bucket_pass_into(
        layers: &[LstmLayer],
        head: &Dense,
        data: &[SeqExample],
        inputs: &[Matrix],
        bucket: &[(usize, usize)],
        batch: &[usize],
        weights: &[f32],
        bws: &mut BatchWorkspace,
        pool: &WorkspacePool,
    ) -> Vec<(usize, Workspace)> {
        debug_assert_eq!(bws.layer_count(), layers.len());
        let b_n = bucket.len();
        let t_len = bucket[0].0;
        debug_assert!(bucket.iter().all(|&(len, _)| len == t_len));

        // Pack features batch-major.
        bws.xs.resize_zeroed(t_len * b_n, layers[0].input_size());
        for (bi, &(_, pos)) in bucket.iter().enumerate() {
            let xs = &inputs[batch[pos]];
            for t in 0..t_len {
                bws.xs.set_row(t * b_n + bi, xs.row(t));
            }
        }

        // Forward through the LSTM stack; each layer reads the previous
        // layer's packed hidden states directly.
        for (li, layer) in layers.iter().enumerate() {
            let (done, rest) = bws.caches.split_at_mut(li);
            let input = if li == 0 { &bws.xs } else { &done[li - 1].h };
            layer.forward_batch_into(input, b_n, &mut rest[0], &mut bws.scratch);
        }
        let last_h = &bws.caches[layers.len() - 1].h;
        head.forward_into(last_h, &mut bws.logits);

        // Loss + dlogits per example, `t` ascending within each example so
        // the per-example loss vectors match the per-sequence pass exactly.
        bws.dlogits
            .resize_zeroed(bws.logits.rows(), bws.logits.cols());
        // Bookkeeping of pool-acquired workspaces (≤ batch_size pairs); the
        // workspaces inside are reused, only this thin index is per-bucket.
        // lint: allow(A1)
        let mut passes: Vec<(usize, Workspace)> = Vec::with_capacity(b_n);
        for (bi, &(_, pos)) in bucket.iter().enumerate() {
            let ex = &data[batch[pos]];
            let mut ws = pool.acquire();
            ws.losses.clear();
            ws.correct = 0;
            for t in 0..t_len {
                let r = t * b_n + bi;
                let loss = softmax_cross_entropy_into(
                    bws.logits.row(r),
                    ex.labels[t],
                    weights,
                    !ex.mask[t],
                    bws.dlogits.row_mut(r),
                    &mut ws.probs,
                );
                if ex.mask[t] {
                    ws.losses.push(loss);
                    if argmax(&ws.probs) == ex.labels[t] {
                        ws.correct += 1;
                    }
                }
            }
            passes.push((pos, ws));
        }

        // Head backward: the input gradient is one packed row-independent
        // GEMM; parameter gradients accumulate per example from extracted
        // matrices (their `t`-ascending order is per example, which packed
        // rows would interleave).
        bws.dlogits.matmul_into(&head.w, &mut bws.dh);
        for (bi, (_, ws)) in passes.iter_mut().enumerate() {
            extract_example_rows(&bws.dlogits, b_n, bi, &mut bws.da_ex);
            extract_example_rows(&bws.caches[layers.len() - 1].h, b_n, bi, &mut bws.h_ex);
            head.param_grads_into(&bws.h_ex, &bws.da_ex, &mut ws.head_grads);
        }

        // Backward down the stack; `dh`/`dx` swap roles exactly as in the
        // per-sequence pass.
        for (li, layer) in layers.iter().enumerate().rev() {
            layer.backward_batch_into(
                &bws.caches[li],
                b_n,
                &bws.dh,
                &mut bws.da_packed,
                &mut bws.dx,
                &mut bws.scratch,
            );
            for (bi, (_, ws)) in passes.iter_mut().enumerate() {
                extract_example_rows(&bws.da_packed, b_n, bi, &mut bws.da_ex);
                if li == 0 {
                    extract_example_rows(&bws.xs, b_n, bi, &mut bws.x_ex);
                } else {
                    extract_example_rows(&bws.caches[li - 1].h, b_n, bi, &mut bws.x_ex);
                }
                extract_example_rows(&bws.caches[li].h, b_n, bi, &mut bws.h_ex);
                layer.param_grads_into(
                    &bws.da_ex,
                    &bws.x_ex,
                    &bws.h_ex,
                    &mut ws.layer_grads[li],
                    &mut ws.scratch,
                );
            }
            std::mem::swap(&mut bws.dh, &mut bws.dx);
        }
        passes
    }

    /// Reference full forward + backward pass for one example, allocating
    /// every intermediate. Kept as the ground truth
    /// [`SequenceClassifier::bucket_pass_into`] (and therefore
    /// [`SequenceClassifier::fit`]) must match bitwise via
    /// [`SequenceClassifier::fit_reference`].
    fn example_pass(
        layers: &[LstmLayer],
        head: &Dense,
        ex: &SeqExample,
        weights: &[f32],
    ) -> ExamplePass {
        let xs = Self::features_to_matrix(&ex.features);

        // Forward through the LSTM stack.
        let mut caches = Vec::with_capacity(layers.len());
        let mut cur = xs;
        for layer in layers {
            let cache = layer.forward(&cur);
            cur = cache.h.clone();
            caches.push(cache);
        }
        let logits = head.forward(&cur);

        // Loss + dlogits per timestep.
        let mut losses = Vec::new();
        let mut correct = 0usize;
        let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
        for t in 0..logits.rows() {
            let eval = softmax_cross_entropy(logits.row(t), ex.labels[t], weights, !ex.mask[t]);
            if ex.mask[t] {
                losses.push(eval.loss);
                if argmax(&eval.probs) == ex.labels[t] {
                    correct += 1;
                }
            }
            dlogits.set_row(t, &eval.dlogits);
        }

        // Backward.
        let (head_grads, mut dh) = head.backward(&cur, &dlogits);
        let mut layer_grads = Vec::with_capacity(layers.len());
        for (layer, cache) in layers.iter().zip(caches.iter()).rev() {
            let (grads, dx) = layer.backward(cache, &dh);
            dh = dx;
            layer_grads.push(grads);
        }
        layer_grads.reverse();

        ExamplePass {
            layer_grads,
            head_grads,
            losses,
            correct,
        }
    }

    /// Trains with Adam, shuffling sequences each epoch. Returns the stats of
    /// the final epoch.
    ///
    /// The epoch loop is allocation-free in steady state: per-example
    /// buffers live in pooled [`Workspace`]s, gradient accumulators persist
    /// across batches, and example feature matrices are materialized once up
    /// front. The result is bitwise identical to
    /// [`SequenceClassifier::fit_reference`] at any thread count
    /// (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or feature widths mismatch the config.
    pub fn fit(&mut self, data: &[SeqExample]) -> EpochStats {
        assert!(!data.is_empty(), "fit called with no data");
        for ex in data {
            assert_eq!(ex.width(), self.config.input_size, "feature width mismatch");
            assert!(
                ex.labels.iter().all(|&l| l < self.config.classes),
                "label out of range"
            );
        }
        let weights = self
            .config
            .class_weights
            .clone()
            .unwrap_or_else(|| uniform_weights(self.config.classes));
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e3779b97f4a7c15);
        let mut order: Vec<usize> = (0..data.len()).collect();
        // Feature matrices are re-read every epoch but never change:
        // materialize them once instead of per pass.
        let inputs: Vec<Matrix> = data
            .iter()
            .map(|ex| Self::features_to_matrix(&ex.features))
            .collect();

        let opt_wx: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wx.len(), self.config.learning_rate))
            .collect();
        let opt_wh: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wh.len(), self.config.learning_rate))
            .collect();
        let opt_b: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.b.len(), self.config.learning_rate))
            .collect();
        let opt_hw = Adam::new(self.head.w.len(), self.config.learning_rate);
        let opt_hb = Adam::new(self.head.b.len(), self.config.learning_rate);

        let pool = WorkspacePool::new(self.layers.len());
        let batch_pool = BatchWorkspacePool::new(self.layers.len());
        let acc_layers: Vec<LstmGrads> = self.layers.iter().map(|_| LstmGrads::empty()).collect();
        let acc_head = DenseGrads::empty();
        // Reusable bucketing scratch: (length, position-in-batch) pairs and
        // the half-open spans of equal-length runs after the stable sort.
        let len_pos: Vec<(usize, usize)> = Vec::new();
        let bucket_spans: Vec<(usize, usize)> = Vec::new();
        let slots: Vec<Option<Workspace>> = Vec::new();

        self.history.clear();
        let batch_size = self.config.batch_size.max(1);
        let mut opts = FitOptimizers {
            wx: opt_wx,
            wh: opt_wh,
            b: opt_b,
            hw: opt_hw,
            hb: opt_hb,
        };
        let mut scratch = FitScratch {
            acc_layers,
            acc_head,
            len_pos,
            bucket_spans,
            slots,
        };
        let mut last = EpochStats {
            mean_loss: 0.0,
            accuracy: 0.0,
        };
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            last = self.fit_epoch(
                data,
                &inputs,
                &weights,
                &order,
                batch_size,
                &pool,
                &batch_pool,
                &mut opts,
                &mut scratch,
            );
            self.history.push(last);
        }
        last
    }

    /// One epoch of [`SequenceClassifier::fit`]'s batched training loop
    /// over a pre-shuffled `order`. Extracted so the steady-state training
    /// loop is a call-graph root for the A1 hot-path-allocation rule
    /// (lint.toml `rules.A1.roots`): everything reachable from here must
    /// reuse the pools and accumulators threaded in — a fresh allocation
    /// per batch is a regression the linter catches.
    #[allow(clippy::too_many_arguments)]
    fn fit_epoch(
        &mut self,
        data: &[SeqExample],
        inputs: &[Matrix],
        weights: &[f32],
        order: &[usize],
        batch_size: usize,
        pool: &WorkspacePool,
        batch_pool: &BatchWorkspacePool,
        opts: &mut FitOptimizers,
        scratch: &mut FitScratch,
    ) -> EpochStats {
        let FitScratch {
            acc_layers,
            acc_head,
            len_pos,
            bucket_spans,
            slots,
        } = scratch;
        let FitOptimizers {
            wx: opt_wx,
            wh: opt_wh,
            b: opt_b,
            hw: opt_hw,
            hb: opt_hb,
        } = opts;
        {
            let mut loss_sum = 0.0f64;
            let mut loss_count = 0usize;
            let mut correct = 0usize;
            for batch in order.chunks(batch_size) {
                // Bucket the batch by exact sequence length: each bucket
                // runs as one packed pass (one fused GEMM per timestep over
                // the whole bucket). The sort is stable, so batch order is
                // preserved within every bucket; results carry their batch
                // position and are scattered back below, so bucket
                // composition cannot affect the reduction order. Buckets
                // only fan out over the worker pool when the batch is big
                // enough to pay for the dispatch.
                len_pos.clear();
                len_pos.extend(
                    batch
                        .iter()
                        .enumerate()
                        .map(|(pos, &idx)| (inputs[idx].rows(), pos)),
                );
                len_pos.sort_by_key(|&(len, _)| len);
                bucket_spans.clear();
                let mut start = 0;
                for end in 1..=len_pos.len() {
                    if end == len_pos.len() || len_pos[end].0 != len_pos[start].0 {
                        bucket_spans.push((start, end));
                        start = end;
                    }
                }
                let layers = &self.layers;
                let head = &self.head;
                let (pool_ref, batch_pool_ref) = (pool, batch_pool);
                let (inputs_ref, weights_ref) = (inputs, weights);
                let len_pos_ref: &[(usize, usize)] = len_pos;
                let bucket_results = crate::par::par_map_if_work(
                    batch.len(),
                    MIN_PARALLEL_FIT_SEQS,
                    bucket_spans,
                    |_, &(s, e)| {
                        let mut bws = batch_pool_ref.acquire();
                        let passes = Self::bucket_pass_into(
                            layers,
                            head,
                            data,
                            inputs_ref,
                            &len_pos_ref[s..e],
                            batch,
                            weights_ref,
                            &mut bws,
                            pool_ref,
                        );
                        batch_pool_ref.release(bws);
                        passes
                    },
                );
                slots.clear();
                slots.resize_with(batch.len(), || None);
                for bucket in bucket_results {
                    for (pos, ws) in bucket {
                        slots[pos] = Some(ws);
                    }
                }

                // Fixed-order reduce over batch positions: the first pass's
                // gradients are copied into the persistent accumulators
                // (bitwise identical to seeding the sum with them, unlike
                // adding onto zeros) and the remaining passes added in batch
                // order — the same order as before bucketing, whatever the
                // bucket layout was.
                let mut results = slots
                    .iter_mut()
                    .map(|slot| slot.take().expect("every batch position filled"));
                let first = results.next().expect("chunks yields non-empty batches");
                for (acc, g) in acc_layers.iter_mut().zip(first.layer_grads.iter()) {
                    acc.wx.copy_from(&g.wx);
                    acc.wh.copy_from(&g.wh);
                    acc.b.clear();
                    acc.b.extend_from_slice(&g.b);
                }
                acc_head.w.copy_from(&first.head_grads.w);
                acc_head.b.clear();
                acc_head.b.extend_from_slice(&first.head_grads.b);
                for &l in &first.losses {
                    loss_sum += l as f64;
                }
                loss_count += first.losses.len();
                correct += first.correct;
                pool.release(first);
                for pass in results {
                    for (acc, g) in acc_layers.iter_mut().zip(pass.layer_grads.iter()) {
                        acc.wx.add_assign(&g.wx);
                        acc.wh.add_assign(&g.wh);
                        for (a, &b) in acc.b.iter_mut().zip(g.b.iter()) {
                            *a += b;
                        }
                    }
                    acc_head.w.add_assign(&pass.head_grads.w);
                    for (a, &b) in acc_head.b.iter_mut().zip(pass.head_grads.b.iter()) {
                        *a += b;
                    }
                    for &l in &pass.losses {
                        loss_sum += l as f64;
                    }
                    loss_count += pass.losses.len();
                    correct += pass.correct;
                    pool.release(pass);
                }

                // Average, clip and apply one optimizer step per batch.
                {
                    // 3*layers+2 pointers into the persistent accumulators;
                    // holds `&mut` so it cannot outlive the batch or be
                    // pooled. lint: allow(A1)
                    let mut bufs: Vec<&mut [f32]> = Vec::new();
                    for g in acc_layers.iter_mut() {
                        bufs.push(g.wx.as_mut_slice());
                        bufs.push(g.wh.as_mut_slice());
                        bufs.push(&mut g.b);
                    }
                    bufs.push(acc_head.w.as_mut_slice());
                    bufs.push(&mut acc_head.b);
                    if batch.len() > 1 {
                        let inv = 1.0 / batch.len() as f32;
                        for buf in bufs.iter_mut() {
                            for v in buf.iter_mut() {
                                *v *= inv;
                            }
                        }
                    }
                    clip_global_norm(&mut bufs, self.config.clip_norm);
                }
                for (i, g) in acc_layers.iter().enumerate() {
                    opt_wx[i].step(self.layers[i].wx.as_mut_slice(), g.wx.as_slice());
                    opt_wh[i].step(self.layers[i].wh.as_mut_slice(), g.wh.as_slice());
                    opt_b[i].step(&mut self.layers[i].b, &g.b);
                }
                opt_hw.step(self.head.w.as_mut_slice(), acc_head.w.as_slice());
                opt_hb.step(&mut self.head.b, &acc_head.b);
            }
            EpochStats {
                mean_loss: if loss_count > 0 {
                    (loss_sum / loss_count as f64) as f32
                } else {
                    0.0
                },
                accuracy: if loss_count > 0 {
                    correct as f64 / loss_count as f64
                } else {
                    0.0
                },
            }
        }
    }

    /// Pre-workspace reference training loop: allocates every intermediate
    /// per example, exactly as `fit` did before the allocation-free rework.
    /// Kept as the ground truth [`SequenceClassifier::fit`] must match
    /// bitwise (property-tested in this crate and in the repo's determinism
    /// suite).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or feature widths mismatch the config.
    pub fn fit_reference(&mut self, data: &[SeqExample]) -> EpochStats {
        assert!(!data.is_empty(), "fit called with no data");
        for ex in data {
            assert_eq!(ex.width(), self.config.input_size, "feature width mismatch");
            assert!(
                ex.labels.iter().all(|&l| l < self.config.classes),
                "label out of range"
            );
        }
        let weights = self
            .config
            .class_weights
            .clone()
            .unwrap_or_else(|| uniform_weights(self.config.classes));
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e3779b97f4a7c15);
        let mut order: Vec<usize> = (0..data.len()).collect();

        let mut opt_wx: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wx.len(), self.config.learning_rate))
            .collect();
        let mut opt_wh: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wh.len(), self.config.learning_rate))
            .collect();
        let mut opt_b: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.b.len(), self.config.learning_rate))
            .collect();
        let mut opt_hw = Adam::new(self.head.w.len(), self.config.learning_rate);
        let mut opt_hb = Adam::new(self.head.b.len(), self.config.learning_rate);

        self.history.clear();
        let batch_size = self.config.batch_size.max(1);
        let mut last = EpochStats {
            mean_loss: 0.0,
            accuracy: 0.0,
        };
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut loss_count = 0usize;
            let mut correct = 0usize;
            for batch in order.chunks(batch_size) {
                let layers = &self.layers;
                let head = &self.head;
                let results = crate::par::par_map(batch, |_, &idx| {
                    Self::example_pass(layers, head, &data[idx], &weights)
                });

                // Fixed-order reduce: sum gradients and loss stats in batch
                // order, then average the gradients.
                let mut results = results.into_iter();
                let first = results.next().expect("chunks yields non-empty batches");
                let (mut layer_grads, mut head_grads) = (first.layer_grads, first.head_grads);
                for &l in &first.losses {
                    loss_sum += l as f64;
                }
                loss_count += first.losses.len();
                correct += first.correct;
                for pass in results {
                    for (acc, g) in layer_grads.iter_mut().zip(pass.layer_grads.iter()) {
                        acc.wx.add_assign(&g.wx);
                        acc.wh.add_assign(&g.wh);
                        for (a, &b) in acc.b.iter_mut().zip(g.b.iter()) {
                            *a += b;
                        }
                    }
                    head_grads.w.add_assign(&pass.head_grads.w);
                    for (a, &b) in head_grads.b.iter_mut().zip(pass.head_grads.b.iter()) {
                        *a += b;
                    }
                    for &l in &pass.losses {
                        loss_sum += l as f64;
                    }
                    loss_count += pass.losses.len();
                    correct += pass.correct;
                }

                // Average, clip and apply one optimizer step per batch.
                {
                    let mut bufs: Vec<&mut [f32]> = Vec::new();
                    for g in layer_grads.iter_mut() {
                        bufs.push(g.wx.as_mut_slice());
                        bufs.push(g.wh.as_mut_slice());
                        bufs.push(&mut g.b);
                    }
                    bufs.push(head_grads.w.as_mut_slice());
                    bufs.push(&mut head_grads.b);
                    if batch.len() > 1 {
                        let inv = 1.0 / batch.len() as f32;
                        for buf in bufs.iter_mut() {
                            for v in buf.iter_mut() {
                                *v *= inv;
                            }
                        }
                    }
                    clip_global_norm(&mut bufs, self.config.clip_norm);
                }
                for (i, g) in layer_grads.iter().enumerate() {
                    opt_wx[i].step(self.layers[i].wx.as_mut_slice(), g.wx.as_slice());
                    opt_wh[i].step(self.layers[i].wh.as_mut_slice(), g.wh.as_slice());
                    opt_b[i].step(&mut self.layers[i].b, &g.b);
                }
                opt_hw.step(self.head.w.as_mut_slice(), head_grads.w.as_slice());
                opt_hb.step(&mut self.head.b, &head_grads.b);
            }
            last = EpochStats {
                mean_loss: if loss_count > 0 {
                    (loss_sum / loss_count as f64) as f32
                } else {
                    0.0
                },
                accuracy: if loss_count > 0 {
                    correct as f64 / loss_count as f64
                } else {
                    0.0
                },
            };
            self.history.push(last);
        }
        last
    }

    /// Predicts the per-timestep class probabilities for one sequence. An
    /// empty sequence yields an empty prediction — length-0 iterations do
    /// occur in faulted traces and must not abort the whole attack.
    ///
    /// Routes through [`SequenceClassifier::predict_proba_batch`] with a
    /// single-sequence bucket; bitwise identical to
    /// [`SequenceClassifier::predict_proba_reference`] (property-tested).
    pub fn predict_proba(&self, features: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.predict_proba_batch(&[features])
            .pop()
            .expect("one result per input sequence")
    }

    /// Reference per-sequence inference: the plain allocating forward walk.
    /// Kept as the ground truth the packed
    /// [`SequenceClassifier::predict_proba_batch`] must match bitwise
    /// (property-tested over ragged lengths, len-0/len-1 sequences and
    /// bucket-boundary sizes).
    pub fn predict_proba_reference(&self, features: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        assert_eq!(
            features[0].len(),
            self.config.input_size,
            "feature width mismatch"
        );
        let mut cur = Self::features_to_matrix(features);
        for layer in &self.layers {
            cur = layer.forward(&cur).h;
        }
        let logits = self.head.forward(&cur);
        (0..logits.rows())
            .map(|t| crate::activation::softmax(logits.row(t)))
            .collect()
    }

    /// Fully scalar per-sequence inference: walks [`LstmLayer::forward_naive`]
    /// — per-gate horizontal dot products, no fused GEMM, no batching —
    /// through the stack. This is the serving benchmark's "f32-scalar"
    /// baseline (the per-label cost before any of the batching/tiling/SIMD
    /// work), and one more bitwise anchor: it must agree with
    /// [`SequenceClassifier::predict_proba`] exactly, because the fused
    /// paths preserve per-element summation order (property-tested).
    pub fn predict_proba_naive(&self, features: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        assert_eq!(
            features[0].len(),
            self.config.input_size,
            "feature width mismatch"
        );
        let mut cur = Self::features_to_matrix(features);
        for layer in &self.layers {
            cur = layer.forward_naive(&cur).h;
        }
        let mut probs = Vec::with_capacity(cur.rows());
        for t in 0..cur.rows() {
            let logits = self.head.forward_one(cur.row(t));
            probs.push(crate::activation::softmax(&logits));
        }
        probs
    }

    /// Per-timestep labels via the fully scalar walk (argmax of
    /// [`SequenceClassifier::predict_proba_naive`]).
    pub fn predict_naive(&self, features: &[Vec<f32>]) -> Vec<usize> {
        self.predict_proba_naive(features)
            .iter()
            .map(|p| argmax(p))
            .collect()
    }

    /// Predicts per-timestep class probabilities for many sequences at once.
    ///
    /// Sequences are bucketed by exact length (a `BTreeMap`, so bucket order
    /// is deterministic) and each bucket runs the packed batched forward —
    /// one fused GEMM per timestep across the bucket — instead of one
    /// recurrence per sequence. Results come back in input order, each
    /// bitwise identical to [`SequenceClassifier::predict_proba_reference`]
    /// on that sequence alone: packed GEMM rows are independent, so bucket
    /// composition cannot change any sequence's values. Empty sequences
    /// yield empty predictions.
    pub fn predict_proba_batch(&self, seqs: &[&[Vec<f32>]]) -> Vec<Vec<Vec<f32>>> {
        let mut results: Vec<Vec<Vec<f32>>> = vec![Vec::new(); seqs.len()];
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, seq) in seqs.iter().enumerate() {
            if seq.is_empty() {
                continue;
            }
            assert_eq!(
                seq[0].len(),
                self.config.input_size,
                "feature width mismatch"
            );
            buckets.entry(seq.len()).or_default().push(i);
        }
        let mut bws = BatchWorkspace::new(self.layers.len());
        for (&t_len, idxs) in &buckets {
            let b_n = idxs.len();
            bws.xs.resize_zeroed(t_len * b_n, self.config.input_size);
            for (bi, &i) in idxs.iter().enumerate() {
                for (t, row) in seqs[i].iter().enumerate() {
                    bws.xs.set_row(t * b_n + bi, row);
                }
            }
            for (li, layer) in self.layers.iter().enumerate() {
                let (done, rest) = bws.caches.split_at_mut(li);
                let input = if li == 0 { &bws.xs } else { &done[li - 1].h };
                layer.forward_batch_into(input, b_n, &mut rest[0], &mut bws.scratch);
            }
            self.head
                .forward_into(&bws.caches[self.layers.len() - 1].h, &mut bws.logits);
            for (bi, &i) in idxs.iter().enumerate() {
                results[i] = (0..t_len)
                    .map(|t| crate::activation::softmax(bws.logits.row(t * b_n + bi)))
                    .collect();
            }
        }
        results
    }

    /// Predicts per-timestep class labels for many sequences at once (the
    /// batched counterpart of [`SequenceClassifier::predict`]).
    pub fn predict_batch(&self, seqs: &[&[Vec<f32>]]) -> Vec<Vec<usize>> {
        self.predict_proba_batch(seqs)
            .iter()
            .map(|probs| probs.iter().map(|p| argmax(p)).collect())
            .collect()
    }

    /// Predicts the per-timestep class labels for one sequence.
    pub fn predict(&self, features: &[Vec<f32>]) -> Vec<usize> {
        self.predict_proba(features)
            .iter()
            .map(|p| argmax(p))
            .collect()
    }

    /// A fresh (all-zero) carry state for one streamed sequence — the state
    /// every sequence implicitly starts from in the batch paths.
    pub fn stream_state(&self) -> StreamState {
        StreamState {
            h: self
                .layers
                .iter()
                .map(|l| vec![0.0; l.hidden_size()])
                .collect(),
            c: self
                .layers
                .iter()
                .map(|l| vec![0.0; l.hidden_size()])
                .collect(),
        }
    }

    /// Stateful streaming inference over many independent streams at once:
    /// `chunks[i]` is the next span of stream `i`'s feature rows and
    /// `states[i]` its `(h, c)` carry, updated in place.
    ///
    /// Equal-length chunks are bucketed exactly like
    /// [`SequenceClassifier::predict_proba_batch`] buckets whole sequences
    /// (a `BTreeMap`, deterministic order) and share fused packed GEMMs
    /// across streams. Because packed GEMM rows are independent and the
    /// recurrence arithmetic is identical whether the previous state came
    /// from the carry or from the preceding timestep of the same call,
    /// concatenating a stream's chunk outputs is **bitwise identical** to
    /// one [`SequenceClassifier::predict_proba`] call on the whole sequence
    /// — for any chunking, and regardless of which other streams share the
    /// call (property-tested). Empty chunks yield empty outputs and leave
    /// their carry untouched.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` and `states` disagree in length, a chunk's feature
    /// width mismatches the classifier, or a carry state has the wrong
    /// shape.
    pub fn predict_proba_stream_chunks(
        &self,
        chunks: &[&[Vec<f32>]],
        states: &mut [StreamState],
    ) -> Vec<Vec<Vec<f32>>> {
        assert_eq!(chunks.len(), states.len(), "one carry state per stream");
        let mut results: Vec<Vec<Vec<f32>>> = vec![Vec::new(); chunks.len()];
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, chunk) in chunks.iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            assert_eq!(
                chunk[0].len(),
                self.config.input_size,
                "feature width mismatch"
            );
            assert_eq!(
                states[i].h.len(),
                self.layers.len(),
                "carry state layer count mismatch"
            );
            buckets.entry(chunk.len()).or_default().push(i);
        }
        let mut bws = BatchWorkspace::new(self.layers.len());
        let mut h0 = Matrix::zeros(1, 1);
        let mut c0 = Matrix::zeros(1, 1);
        for (&t_len, idxs) in &buckets {
            let b_n = idxs.len();
            bws.xs.resize_zeroed(t_len * b_n, self.config.input_size);
            for (bi, &i) in idxs.iter().enumerate() {
                for (t, row) in chunks[i].iter().enumerate() {
                    bws.xs.set_row(t * b_n + bi, row);
                }
            }
            for (li, layer) in self.layers.iter().enumerate() {
                let h_size = layer.hidden_size();
                h0.resize_zeroed(b_n, h_size);
                c0.resize_zeroed(b_n, h_size);
                for (bi, &i) in idxs.iter().enumerate() {
                    assert_eq!(states[i].h[li].len(), h_size, "carry state width mismatch");
                    h0.row_mut(bi).copy_from_slice(&states[i].h[li]);
                    c0.row_mut(bi).copy_from_slice(&states[i].c[li]);
                }
                let (done, rest) = bws.caches.split_at_mut(li);
                let input = if li == 0 { &bws.xs } else { &done[li - 1].h };
                layer.forward_batch_stateful_into(
                    input,
                    b_n,
                    Some((&mut h0, &mut c0)),
                    &mut rest[0],
                    &mut bws.scratch,
                );
                for (bi, &i) in idxs.iter().enumerate() {
                    states[i].h[li].copy_from_slice(h0.row(bi));
                    states[i].c[li].copy_from_slice(c0.row(bi));
                }
            }
            self.head
                .forward_into(&bws.caches[self.layers.len() - 1].h, &mut bws.logits);
            for (bi, &i) in idxs.iter().enumerate() {
                results[i] = (0..t_len)
                    .map(|t| crate::activation::softmax(bws.logits.row(t * b_n + bi)))
                    .collect();
            }
        }
        results
    }

    /// Label form of [`SequenceClassifier::predict_proba_stream_chunks`]:
    /// the same softmax + first-max argmax sequence as
    /// [`SequenceClassifier::predict_batch`], so streamed labels can never
    /// diverge from batch labels on a near-tie.
    pub fn predict_stream_chunks(
        &self,
        chunks: &[&[Vec<f32>]],
        states: &mut [StreamState],
    ) -> Vec<Vec<usize>> {
        self.predict_proba_stream_chunks(chunks, states)
            .iter()
            .map(|probs| probs.iter().map(|p| argmax(p)).collect())
            .collect()
    }

    /// Single-stream convenience for
    /// [`SequenceClassifier::predict_proba_stream_chunks`].
    pub fn predict_proba_stream_chunk(
        &self,
        chunk: &[Vec<f32>],
        state: &mut StreamState,
    ) -> Vec<Vec<f32>> {
        self.predict_proba_stream_chunks(&[chunk], std::slice::from_mut(state))
            .pop()
            .expect("one result per stream")
    }
}

/// Per-stream `(h, c)` carry for chunked stateful inference: one hidden and
/// one cell vector per stacked LSTM layer. Obtained from
/// [`SequenceClassifier::stream_state`]; passing it back to the streaming
/// predict calls advances it in place. A fresh state is all zeros — exactly
/// where the batch paths start every sequence — so chunked and whole-sequence
/// inference agree bitwise from the first timestep.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    h: Vec<Vec<f32>>,
    c: Vec<Vec<f32>>,
}

impl StreamState {
    /// Resets the carry to the all-zero start-of-sequence state, reusing the
    /// allocations.
    pub fn reset(&mut self) {
        for v in self.h.iter_mut().chain(self.c.iter_mut()) {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }
}

/// Copies sequence `bi`'s rows (`t * batch + bi`, `t` ascending) out of a
/// batch-major packed matrix into `out` (T x cols).
fn extract_example_rows(packed: &Matrix, batch: usize, bi: usize, out: &mut Matrix) {
    let t_len = packed.rows() / batch;
    out.resize_zeroed(t_len, packed.cols());
    for t in 0..t_len {
        out.set_row(t, packed.row(t * batch + bi));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic task: class = quadrant of the (noisy) 2-d input.
    fn quadrant_dataset(n: usize, t: usize, seed: u64) -> Vec<SeqExample> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut features = Vec::with_capacity(t);
                let mut labels = Vec::with_capacity(t);
                for _ in 0..t {
                    let lab = rng.gen_range(0..4usize);
                    let (sx, sy) = match lab {
                        0 => (1.0, 1.0),
                        1 => (-1.0, 1.0),
                        2 => (-1.0, -1.0),
                        _ => (1.0, -1.0),
                    };
                    features.push(vec![
                        sx + rng.gen_range(-0.2f32..0.2),
                        sy + rng.gen_range(-0.2f32..0.2),
                    ]);
                    labels.push(lab);
                }
                SeqExample::new(features, labels)
            })
            .collect()
    }

    #[test]
    fn learns_separable_per_timestep_task() {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 25;
        cfg.seed = 11;
        let data = quadrant_dataset(16, 8, 3);
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(stats.accuracy > 0.9, "train accuracy too low: {:?}", stats);
        // Generalizes to fresh sequences from the same distribution.
        let test = quadrant_dataset(4, 8, 999);
        let mut correct = 0;
        let mut total = 0;
        for ex in &test {
            let pred = clf.predict(&ex.features);
            for (p, &l) in pred.iter().zip(&ex.labels) {
                total += 1;
                if *p == l {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.85,
            "{}/{}",
            correct,
            total
        );
    }

    #[test]
    fn uses_context_for_ambiguous_timesteps() {
        // The label of every timestep equals the label carried by the first
        // timestep's one-hot; later inputs are zero. Solving this requires
        // memory, which a per-timestep (memoryless) classifier cannot have.
        let mut data = Vec::new();
        for lab in 0..2usize {
            for _ in 0..6 {
                let mut features = vec![vec![0.0, 0.0]; 6];
                features[0][lab] = 1.0;
                data.push(SeqExample::new(features, vec![lab; 6]));
            }
        }
        let mut cfg = SeqClassifierConfig::new(2, 10, 2);
        cfg.epochs = 60;
        cfg.seed = 21;
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(
            stats.accuracy > 0.95,
            "LSTM failed to carry context: {:?}",
            stats
        );
    }

    #[test]
    fn masked_timesteps_do_not_drive_learning() {
        // Two classes with identical features; class-1 labels only ever
        // appear masked, so the model should keep predicting class 0.
        let mut data = Vec::new();
        for _ in 0..8 {
            let features = vec![vec![1.0]; 4];
            data.push(SeqExample::with_mask(
                features.clone(),
                vec![0, 1, 0, 1],
                vec![true, false, true, false],
            ));
        }
        let mut cfg = SeqClassifierConfig::new(1, 6, 2);
        cfg.epochs = 30;
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(stats.accuracy > 0.95, "{:?}", stats);
        let pred = clf.predict(&data[0].features);
        assert!(pred.iter().all(|&p| p == 0), "{:?}", pred);
    }

    #[test]
    fn minibatch_training_learns_separable_task() {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 25;
        cfg.seed = 11;
        cfg.batch_size = 4;
        let data = quadrant_dataset(16, 8, 3);
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(
            stats.accuracy > 0.9,
            "batched train accuracy too low: {:?}",
            stats
        );
    }

    #[test]
    fn fit_is_bitwise_thread_count_invariant() {
        let data = quadrant_dataset(10, 6, 13);
        for batch_size in [1usize, 4] {
            let mut cfg = SeqClassifierConfig::new(2, 8, 4);
            cfg.epochs = 4;
            cfg.batch_size = batch_size;
            let run = |threads: usize| {
                let cfg = cfg.clone();
                let data = &data;
                crate::par::with_threads(threads, move || {
                    let mut clf = SequenceClassifier::new(cfg);
                    clf.fit(data);
                    clf
                })
            };
            let one = run(1);
            let eight = run(8);
            assert_eq!(
                one.history(),
                eight.history(),
                "history differs (batch {})",
                batch_size
            );
            for (a, b) in one.layers.iter().zip(&eight.layers) {
                assert_eq!(a.wx, b.wx, "wx differs (batch {})", batch_size);
                assert_eq!(a.wh, b.wh, "wh differs (batch {})", batch_size);
                assert_eq!(a.b, b.b, "b differs (batch {})", batch_size);
            }
            assert_eq!(
                one.head.w, eight.head.w,
                "head differs (batch {})",
                batch_size
            );
            assert_eq!(
                one.head.b, eight.head.b,
                "head bias differs (batch {})",
                batch_size
            );
        }
    }

    #[test]
    fn fit_matches_allocating_reference_bitwise() {
        // `batch_size = 1` (single-example minibatches) and `t_len = 1`
        // (single-timestep sequences) sit at the generator floors, so every
        // counterexample shrinks toward the classic per-example schedule.
        let shapes = testkit::gen::zip3(
            testkit::gen::usize_in(1, 5), // batch_size
            testkit::gen::usize_in(1, 8), // thread count
            testkit::gen::usize_in(1, 5), // timesteps per sequence
        );
        testkit::check(
            "seq_fit_pooled_vs_reference",
            &shapes,
            |&(batch_size, threads, t_len)| {
                let data = quadrant_dataset(6, t_len, 13);
                let mut cfg = SeqClassifierConfig::new(2, 6, 4);
                cfg.epochs = 3;
                cfg.batch_size = batch_size;
                let (pooled, reference) = crate::par::with_threads(threads, || {
                    let mut a = SequenceClassifier::new(cfg.clone());
                    a.fit(&data);
                    let mut b = SequenceClassifier::new(cfg.clone());
                    b.fit_reference(&data);
                    (a, b)
                });
                testkit::prop::holds(pooled.history() == reference.history(), "history differs")?;
                for (a, b) in pooled.layers.iter().zip(&reference.layers) {
                    testkit::prop::holds(a.wx == b.wx, "wx differs")?;
                    testkit::prop::holds(a.wh == b.wh, "wh differs")?;
                    testkit::prop::holds(a.b == b.b, "b differs")?;
                }
                testkit::prop::holds(pooled.head.w == reference.head.w, "head w differs")?;
                testkit::prop::holds(pooled.head.b == reference.head.b, "head b differs")
            },
        );
    }

    #[test]
    fn packed_batch_predict_matches_unpacked_reference_bitwise() {
        use rand::Rng;
        let mut cfg = SeqClassifierConfig::new(3, 7, 4);
        cfg.epochs = 2;
        cfg.seed = 0xbead;
        let train: Vec<SeqExample> = (0..6)
            .map(|i| {
                let lab = i % 4;
                SeqExample::new(vec![vec![lab as f32, 1.0, -0.5]; 4], vec![lab; 4])
            })
            .collect();
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&train);
        // Ragged length multisets: len-0 and len-1 sequences, duplicate
        // lengths (bucket sizes > 1) and lengths straddling small-bucket
        // boundaries all occur; the whole batch must agree with the
        // per-sequence reference bit for bit.
        let lens =
            testkit::gen::vec_of(testkit::gen::choice(vec![0usize, 1, 2, 3, 5, 8, 9]), 1, 10);
        testkit::check("seq_packed_predict_vs_reference", &lens, |lens| {
            let mut rng = StdRng::seed_from_u64(
                0x9acc_ee01
                    ^ lens
                        .iter()
                        .fold(7u64, |a, &l| a.wrapping_mul(31) + l as u64),
            );
            let seqs: Vec<Vec<Vec<f32>>> = lens
                .iter()
                .map(|&l| {
                    (0..l)
                        .map(|_| (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                        .collect()
                })
                .collect();
            let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
            let packed = clf.predict_proba_batch(&refs);
            for (i, seq) in seqs.iter().enumerate() {
                let solo = clf.predict_proba_reference(seq);
                testkit::prop::holds(
                    packed[i] == solo,
                    format!("sequence {i} (len {}) differs from reference", seq.len()),
                )?;
                testkit::prop::holds(
                    clf.predict_proba(seq) == solo,
                    format!("predict_proba for sequence {i} differs from reference"),
                )?;
                testkit::prop::holds(
                    clf.predict_proba_naive(seq) == solo,
                    format!("predict_proba_naive for sequence {i} differs from reference"),
                )?;
            }
            let labels = clf.predict_batch(&refs);
            for (i, seq) in seqs.iter().enumerate() {
                testkit::prop::holds(
                    labels[i] == clf.predict(seq),
                    format!("predict_batch labels differ for sequence {i}"),
                )?;
            }
            Ok(())
        });
    }

    #[test]
    fn stream_chunked_inference_matches_whole_sequence_bitwise() {
        use rand::Rng;
        // Two stacked layers so the carry covers the multi-layer path.
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.hidden_sizes = vec![12, 8];
        cfg.epochs = 2;
        cfg.seed = 0x57_ea;
        let data = quadrant_dataset(8, 6, 41);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        // Any chunking of a sequence — including 1-row chunks and interior
        // empty chunks — must reproduce the whole-sequence output bitwise.
        let seeds = testkit::gen::vec_of(testkit::gen::u64_in(0, u64::MAX), 1, 6);
        testkit::check("seq_stream_chunking_vs_whole", &seeds, |seeds| {
            for &seed in seeds {
                let mut rng = StdRng::seed_from_u64(seed);
                let t_len = rng.gen_range(1..=14usize);
                let seq: Vec<Vec<f32>> = (0..t_len)
                    .map(|_| (0..2).map(|_| rng.gen_range(-1.5f32..1.5)).collect())
                    .collect();
                let whole = clf.predict_proba(&seq);
                let mut state = clf.stream_state();
                let mut streamed: Vec<Vec<f32>> = Vec::new();
                let mut at = 0usize;
                while at < t_len {
                    if rng.gen_bool(0.2) {
                        // Interleave empty chunks: no output, carry untouched.
                        let before = state.clone();
                        let out = clf.predict_proba_stream_chunk(&[], &mut state);
                        testkit::prop::holds(out.is_empty(), "empty chunk must be empty")?;
                        testkit::prop::holds(state == before, "empty chunk moved the carry")?;
                    }
                    let take = rng.gen_range(1..=4usize).min(t_len - at);
                    streamed
                        .extend(clf.predict_proba_stream_chunk(&seq[at..at + take], &mut state));
                    at += take;
                }
                testkit::prop::holds(
                    streamed == whole,
                    format!("chunked stream diverged from whole sequence (seed {seed:#x})"),
                )?;
                // The label path must be the argmax of the proba path.
                state.reset();
                let labels = clf.predict_stream_chunks(&[&seq], std::slice::from_mut(&mut state));
                testkit::prop::holds(
                    labels[0] == clf.predict(&seq),
                    "streamed labels diverged from batch labels",
                )?;
            }
            Ok(())
        });
    }

    #[test]
    fn cross_stream_batched_chunks_match_isolated_streams_bitwise() {
        use rand::Rng;
        let mut cfg = SeqClassifierConfig::new(2, 10, 4);
        cfg.epochs = 2;
        cfg.seed = 0xf1ee;
        let data = quadrant_dataset(8, 5, 43);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        // Several streams of different lengths advance in lockstep through
        // one batched call per round; each must match the same stream
        // advanced alone, chunk for chunk, bit for bit.
        let mut rng = StdRng::seed_from_u64(0x0ba7_c4ed);
        let streams: Vec<Vec<Vec<f32>>> = [11usize, 4, 7, 1, 11]
            .iter()
            .map(|&t| {
                (0..t)
                    .map(|_| (0..2).map(|_| rng.gen_range(-1.5f32..1.5)).collect())
                    .collect()
            })
            .collect();
        let chunk_sizes = [3usize, 2, 4, 1, 3];
        let mut joint_states: Vec<StreamState> =
            streams.iter().map(|_| clf.stream_state()).collect();
        let mut joint_out: Vec<Vec<Vec<f32>>> = vec![Vec::new(); streams.len()];
        let mut offsets = vec![0usize; streams.len()];
        while offsets.iter().zip(&streams).any(|(&o, s)| o < s.len()) {
            let chunks: Vec<&[Vec<f32>]> = streams
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let end = (offsets[i] + chunk_sizes[i]).min(s.len());
                    &s[offsets[i]..end]
                })
                .collect();
            let round = clf.predict_proba_stream_chunks(&chunks, &mut joint_states);
            for (i, out) in round.into_iter().enumerate() {
                offsets[i] += chunks[i].len();
                joint_out[i].extend(out);
            }
        }
        for (i, seq) in streams.iter().enumerate() {
            // Isolated replay of the same chunking.
            let mut state = clf.stream_state();
            let mut solo: Vec<Vec<f32>> = Vec::new();
            let mut at = 0usize;
            while at < seq.len() {
                let end = (at + chunk_sizes[i]).min(seq.len());
                solo.extend(clf.predict_proba_stream_chunk(&seq[at..end], &mut state));
                at = end;
            }
            assert_eq!(
                joint_out[i], solo,
                "stream {i} diverged between batched and isolated runs"
            );
            assert_eq!(
                joint_out[i],
                clf.predict_proba(seq),
                "stream {i} diverged from whole-sequence inference"
            );
            assert_eq!(joint_states[i], state, "stream {i} carry state diverged");
        }
    }

    #[test]
    fn fit_gates_parallelism_but_large_batches_stay_invariant() {
        // A batch larger than MIN_PARALLEL_FIT_SEQS actually fans out; the
        // result must still be bitwise identical to the serial run.
        let data = quadrant_dataset(MIN_PARALLEL_FIT_SEQS + 8, 5, 23);
        let mut cfg = SeqClassifierConfig::new(2, 6, 4);
        cfg.epochs = 2;
        cfg.batch_size = MIN_PARALLEL_FIT_SEQS + 8;
        let run = |threads: usize| {
            let cfg = cfg.clone();
            let data = &data;
            crate::par::with_threads(threads, move || {
                let mut clf = SequenceClassifier::new(cfg);
                clf.fit(data);
                clf
            })
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.history(), eight.history());
        for (a, b) in one.layers.iter().zip(&eight.layers) {
            assert_eq!(a.wx, b.wx);
            assert_eq!(a.wh, b.wh);
            assert_eq!(a.b, b.b);
        }
        assert_eq!(one.head.w, eight.head.w);
        assert_eq!(one.head.b, eight.head.b);
    }

    #[test]
    fn predict_handles_empty_and_single_step_sequences() {
        let mut cfg = SeqClassifierConfig::new(2, 6, 4);
        cfg.epochs = 2;
        let data = quadrant_dataset(4, 3, 5);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        // Length-0: an empty prediction, not a panic (faulted traces can
        // produce empty iterations).
        assert!(clf.predict_proba(&[]).is_empty());
        assert!(clf.predict(&[]).is_empty());
        // Length-1: exactly one per-timestep distribution, consistent with
        // `predict`, for any feature row.
        let row = testkit::gen::vec_of(testkit::gen::f32_in(-1.0, 1.0), 2, 2);
        testkit::check("seq_predict_len1", &row, |row| {
            let p = clf.predict_proba(std::slice::from_ref(row));
            testkit::prop::holds(p.len() == 1, "len-1 sequence must give one prediction")?;
            let sum: f32 = p[0].iter().sum();
            testkit::prop::holds((sum - 1.0).abs() < 1e-4, "probabilities must sum to 1")?;
            testkit::prop::holds(
                clf.predict(std::slice::from_ref(row)) == vec![argmax(&p[0])],
                "predict must be the argmax of predict_proba",
            )
        });
    }

    #[test]
    fn history_is_recorded_per_epoch() {
        let mut cfg = SeqClassifierConfig::new(2, 4, 4);
        cfg.epochs = 3;
        let data = quadrant_dataset(4, 4, 7);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        assert_eq!(clf.history().len(), 3);
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 15;
        let data = quadrant_dataset(12, 8, 5);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        let first = clf.history().first().unwrap().mean_loss;
        let last = clf.history().last().unwrap().mean_loss;
        assert!(
            last < first * 0.7,
            "loss did not decrease: {} -> {}",
            first,
            last
        );
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_validates_width() {
        let cfg = SeqClassifierConfig::new(3, 4, 2);
        let clf = SequenceClassifier::new(cfg);
        let _ = clf.predict(&[vec![0.0; 2]]);
    }

    #[test]
    fn param_count_is_positive_and_consistent() {
        let cfg = SeqClassifierConfig::new(10, 16, 4);
        let clf = SequenceClassifier::new(cfg);
        // wx: 64*10, wh: 64*16, b: 64, head: 4*16+4
        assert_eq!(clf.param_count(), 64 * 10 + 64 * 16 + 64 + 4 * 16 + 4);
    }
}
