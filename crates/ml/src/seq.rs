//! Per-timestep sequence classifier: stacked LSTM layers, a dense head and a
//! (weighted, maskable) softmax cross-entropy loss — the shape shared by all
//! five inference models in the paper's Table III.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::activation::argmax;
use crate::data::SeqExample;
use crate::dense::{Dense, DenseGrads};
use crate::loss::{softmax_cross_entropy, softmax_cross_entropy_into, uniform_weights};
use crate::lstm::{LstmGrads, LstmLayer};
use crate::matrix::Matrix;
use crate::optim::{clip_global_norm, Adam, Optimizer};
use crate::workspace::{Workspace, WorkspacePool};

/// Training/topology configuration for a [`SequenceClassifier`].
#[derive(Debug, Clone)]
pub struct SeqClassifierConfig {
    /// Feature width per timestep.
    pub input_size: usize,
    /// Hidden sizes of the stacked LSTM layers (Table III uses `[256]` for
    /// Mlong/Mop/Vlong/Vop and `[128]` for Mhp).
    pub hidden_sizes: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs over the full dataset.
    pub epochs: usize,
    /// Global-norm gradient clip.
    pub clip_norm: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
    /// Per-class loss weights; `None` = uniform.
    pub class_weights: Option<Vec<f32>>,
    /// Examples per Adam step. Per-example BPTT within a batch runs on the
    /// worker pool and the batch-mean gradient takes one optimizer step.
    /// `1` (the default) reproduces the classic per-example schedule
    /// exactly; larger batches trade schedule for step stability and
    /// parallel speedup. The result is identical for any thread count.
    pub batch_size: usize,
}

impl SeqClassifierConfig {
    /// A reasonable default for a given problem shape.
    pub fn new(input_size: usize, hidden: usize, classes: usize) -> Self {
        SeqClassifierConfig {
            input_size,
            hidden_sizes: vec![hidden],
            classes,
            learning_rate: 0.01,
            epochs: 12,
            clip_norm: 5.0,
            seed: 0x5eed,
            class_weights: None,
            batch_size: 1,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean loss over unmasked timesteps.
    pub mean_loss: f32,
    /// Accuracy over unmasked timesteps.
    pub accuracy: f64,
}

/// An LSTM sequence classifier producing one class per timestep.
///
/// # Examples
///
/// ```
/// use ml::seq::{SeqClassifierConfig, SequenceClassifier};
/// use ml::data::SeqExample;
///
/// // Learn "label = which half of the 2-dim input is hot".
/// let mut cfg = SeqClassifierConfig::new(2, 8, 2);
/// cfg.epochs = 30;
/// let data: Vec<SeqExample> = (0..8)
///     .map(|i| {
///         let lab = i % 2;
///         let mut f = vec![0.0, 0.0];
///         f[lab] = 1.0;
///         SeqExample::new(vec![f; 5], vec![lab; 5])
///     })
///     .collect();
/// let mut clf = SequenceClassifier::new(cfg);
/// clf.fit(&data);
/// let pred = clf.predict(&data[0].features);
/// assert_eq!(pred, data[0].labels);
/// ```
#[derive(Debug, Clone)]
pub struct SequenceClassifier {
    config: SeqClassifierConfig,
    layers: Vec<LstmLayer>,
    head: Dense,
    history: Vec<EpochStats>,
}

/// Gradients and loss statistics from one example's forward/backward pass.
struct ExamplePass {
    layer_grads: Vec<crate::lstm::LstmGrads>,
    head_grads: crate::dense::DenseGrads,
    /// Loss per unmasked timestep, in timestep order.
    losses: Vec<f32>,
    correct: usize,
}

impl SequenceClassifier {
    /// Builds an untrained classifier from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no hidden layers or zero classes.
    pub fn new(config: SeqClassifierConfig) -> Self {
        assert!(
            !config.hidden_sizes.is_empty(),
            "need at least one LSTM layer"
        );
        assert!(config.classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::new();
        let mut in_size = config.input_size;
        for &h in &config.hidden_sizes {
            layers.push(LstmLayer::new(in_size, h, &mut rng));
            in_size = h;
        }
        let head = Dense::new(in_size, config.classes, &mut rng);
        SequenceClassifier {
            config,
            layers,
            head,
            history: Vec::new(),
        }
    }

    /// The configuration this classifier was built with.
    pub fn config(&self) -> &SeqClassifierConfig {
        &self.config
    }

    /// Per-epoch loss/accuracy recorded by the last `fit` call.
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(LstmLayer::param_count)
            .sum::<usize>()
            + self.head.param_count()
    }

    fn features_to_matrix(features: &[Vec<f32>]) -> Matrix {
        assert!(!features.is_empty(), "empty sequence");
        let mut m = Matrix::zeros(features.len(), features[0].len());
        for (t, f) in features.iter().enumerate() {
            m.set_row(t, f);
        }
        m
    }

    /// Full forward + backward pass for one example against frozen
    /// parameters, writing every intermediate and result into `ws` without
    /// allocating (once the workspace is warm). Runs on pool workers during
    /// `fit`; it only reads the model, so any number of examples can run
    /// concurrently. Every buffer it reads is fully overwritten first, so
    /// the result is independent of the workspace's previous contents —
    /// property-tested bitwise-equal to [`SequenceClassifier::example_pass`].
    fn example_pass_into(
        layers: &[LstmLayer],
        head: &Dense,
        xs: &Matrix,
        ex: &SeqExample,
        weights: &[f32],
        ws: &mut Workspace,
    ) {
        debug_assert_eq!(ws.layer_count(), layers.len());
        // Forward through the LSTM stack; each layer reads the previous
        // layer's cached hidden states directly instead of cloning them.
        for (li, layer) in layers.iter().enumerate() {
            let (done, rest) = ws.caches.split_at_mut(li);
            let input = if li == 0 { xs } else { &done[li - 1].h };
            layer.forward_into(input, &mut rest[0], &mut ws.scratch);
        }
        let last_h = &ws.caches[layers.len() - 1].h;
        head.forward_into(last_h, &mut ws.logits);

        // Loss + dlogits per timestep.
        ws.losses.clear();
        ws.correct = 0;
        ws.dlogits.resize_zeroed(ws.logits.rows(), ws.logits.cols());
        for t in 0..ws.logits.rows() {
            let loss = softmax_cross_entropy_into(
                ws.logits.row(t),
                ex.labels[t],
                weights,
                !ex.mask[t],
                ws.dlogits.row_mut(t),
                &mut ws.probs,
            );
            if ex.mask[t] {
                ws.losses.push(loss);
                if argmax(&ws.probs) == ex.labels[t] {
                    ws.correct += 1;
                }
            }
        }

        // Backward; `dh`/`dx` swap roles as the gradient walks down the
        // stack, exactly mirroring the allocating path's `dh = dx`.
        head.backward_into(last_h, &ws.dlogits, &mut ws.head_grads, &mut ws.dh);
        for (li, layer) in layers.iter().enumerate().rev() {
            layer.backward_into(
                &ws.caches[li],
                &ws.dh,
                &mut ws.layer_grads[li],
                &mut ws.dx,
                &mut ws.scratch,
            );
            std::mem::swap(&mut ws.dh, &mut ws.dx);
        }
    }

    /// Reference full forward + backward pass for one example, allocating
    /// every intermediate. Kept as the ground truth
    /// [`SequenceClassifier::example_pass_into`] (and therefore
    /// [`SequenceClassifier::fit`]) must match bitwise via
    /// [`SequenceClassifier::fit_reference`].
    fn example_pass(
        layers: &[LstmLayer],
        head: &Dense,
        ex: &SeqExample,
        weights: &[f32],
    ) -> ExamplePass {
        let xs = Self::features_to_matrix(&ex.features);

        // Forward through the LSTM stack.
        let mut caches = Vec::with_capacity(layers.len());
        let mut cur = xs;
        for layer in layers {
            let cache = layer.forward(&cur);
            cur = cache.h.clone();
            caches.push(cache);
        }
        let logits = head.forward(&cur);

        // Loss + dlogits per timestep.
        let mut losses = Vec::new();
        let mut correct = 0usize;
        let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
        for t in 0..logits.rows() {
            let eval = softmax_cross_entropy(logits.row(t), ex.labels[t], weights, !ex.mask[t]);
            if ex.mask[t] {
                losses.push(eval.loss);
                if argmax(&eval.probs) == ex.labels[t] {
                    correct += 1;
                }
            }
            dlogits.set_row(t, &eval.dlogits);
        }

        // Backward.
        let (head_grads, mut dh) = head.backward(&cur, &dlogits);
        let mut layer_grads = Vec::with_capacity(layers.len());
        for (layer, cache) in layers.iter().zip(caches.iter()).rev() {
            let (grads, dx) = layer.backward(cache, &dh);
            dh = dx;
            layer_grads.push(grads);
        }
        layer_grads.reverse();

        ExamplePass {
            layer_grads,
            head_grads,
            losses,
            correct,
        }
    }

    /// Trains with Adam, shuffling sequences each epoch. Returns the stats of
    /// the final epoch.
    ///
    /// The epoch loop is allocation-free in steady state: per-example
    /// buffers live in pooled [`Workspace`]s, gradient accumulators persist
    /// across batches, and example feature matrices are materialized once up
    /// front. The result is bitwise identical to
    /// [`SequenceClassifier::fit_reference`] at any thread count
    /// (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or feature widths mismatch the config.
    pub fn fit(&mut self, data: &[SeqExample]) -> EpochStats {
        assert!(!data.is_empty(), "fit called with no data");
        for ex in data {
            assert_eq!(ex.width(), self.config.input_size, "feature width mismatch");
            assert!(
                ex.labels.iter().all(|&l| l < self.config.classes),
                "label out of range"
            );
        }
        let weights = self
            .config
            .class_weights
            .clone()
            .unwrap_or_else(|| uniform_weights(self.config.classes));
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e3779b97f4a7c15);
        let mut order: Vec<usize> = (0..data.len()).collect();
        // Feature matrices are re-read every epoch but never change:
        // materialize them once instead of per pass.
        let inputs: Vec<Matrix> = data
            .iter()
            .map(|ex| Self::features_to_matrix(&ex.features))
            .collect();

        let mut opt_wx: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wx.len(), self.config.learning_rate))
            .collect();
        let mut opt_wh: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wh.len(), self.config.learning_rate))
            .collect();
        let mut opt_b: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.b.len(), self.config.learning_rate))
            .collect();
        let mut opt_hw = Adam::new(self.head.w.len(), self.config.learning_rate);
        let mut opt_hb = Adam::new(self.head.b.len(), self.config.learning_rate);

        let pool = WorkspacePool::new(self.layers.len());
        let mut acc_layers: Vec<LstmGrads> =
            self.layers.iter().map(|_| LstmGrads::empty()).collect();
        let mut acc_head = DenseGrads::empty();

        self.history.clear();
        let batch_size = self.config.batch_size.max(1);
        let mut last = EpochStats {
            mean_loss: 0.0,
            accuracy: 0.0,
        };
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut loss_count = 0usize;
            let mut correct = 0usize;
            for batch in order.chunks(batch_size) {
                // Per-example BPTT fans out over the worker pool; results
                // come back in batch order, so the reduction below is
                // identical for any thread count. Workspaces cycle through a
                // shared free list and are fully overwritten per pass, so
                // which worker draws which workspace cannot affect the
                // result either.
                let layers = &self.layers;
                let head = &self.head;
                let (pool_ref, inputs_ref, weights_ref) = (&pool, &inputs, &weights);
                let results = crate::par::par_map(batch, |_, &idx| {
                    let mut ws = pool_ref.acquire();
                    Self::example_pass_into(
                        layers,
                        head,
                        &inputs_ref[idx],
                        &data[idx],
                        weights_ref,
                        &mut ws,
                    );
                    ws
                });

                // Fixed-order reduce: the first pass's gradients are copied
                // into the persistent accumulators (bitwise identical to
                // seeding the sum with them, unlike adding onto zeros) and
                // the remaining passes added in batch order.
                let mut results = results.into_iter();
                let first = results.next().expect("chunks yields non-empty batches");
                for (acc, g) in acc_layers.iter_mut().zip(first.layer_grads.iter()) {
                    acc.wx.copy_from(&g.wx);
                    acc.wh.copy_from(&g.wh);
                    acc.b.clear();
                    acc.b.extend_from_slice(&g.b);
                }
                acc_head.w.copy_from(&first.head_grads.w);
                acc_head.b.clear();
                acc_head.b.extend_from_slice(&first.head_grads.b);
                for &l in &first.losses {
                    loss_sum += l as f64;
                }
                loss_count += first.losses.len();
                correct += first.correct;
                pool.release(first);
                for pass in results {
                    for (acc, g) in acc_layers.iter_mut().zip(pass.layer_grads.iter()) {
                        acc.wx.add_assign(&g.wx);
                        acc.wh.add_assign(&g.wh);
                        for (a, &b) in acc.b.iter_mut().zip(g.b.iter()) {
                            *a += b;
                        }
                    }
                    acc_head.w.add_assign(&pass.head_grads.w);
                    for (a, &b) in acc_head.b.iter_mut().zip(pass.head_grads.b.iter()) {
                        *a += b;
                    }
                    for &l in &pass.losses {
                        loss_sum += l as f64;
                    }
                    loss_count += pass.losses.len();
                    correct += pass.correct;
                    pool.release(pass);
                }

                // Average, clip and apply one optimizer step per batch.
                {
                    let mut bufs: Vec<&mut [f32]> = Vec::new();
                    for g in acc_layers.iter_mut() {
                        bufs.push(g.wx.as_mut_slice());
                        bufs.push(g.wh.as_mut_slice());
                        bufs.push(&mut g.b);
                    }
                    bufs.push(acc_head.w.as_mut_slice());
                    bufs.push(&mut acc_head.b);
                    if batch.len() > 1 {
                        let inv = 1.0 / batch.len() as f32;
                        for buf in bufs.iter_mut() {
                            for v in buf.iter_mut() {
                                *v *= inv;
                            }
                        }
                    }
                    clip_global_norm(&mut bufs, self.config.clip_norm);
                }
                for (i, g) in acc_layers.iter().enumerate() {
                    opt_wx[i].step(self.layers[i].wx.as_mut_slice(), g.wx.as_slice());
                    opt_wh[i].step(self.layers[i].wh.as_mut_slice(), g.wh.as_slice());
                    opt_b[i].step(&mut self.layers[i].b, &g.b);
                }
                opt_hw.step(self.head.w.as_mut_slice(), acc_head.w.as_slice());
                opt_hb.step(&mut self.head.b, &acc_head.b);
            }
            last = EpochStats {
                mean_loss: if loss_count > 0 {
                    (loss_sum / loss_count as f64) as f32
                } else {
                    0.0
                },
                accuracy: if loss_count > 0 {
                    correct as f64 / loss_count as f64
                } else {
                    0.0
                },
            };
            self.history.push(last);
        }
        last
    }

    /// Pre-workspace reference training loop: allocates every intermediate
    /// per example, exactly as `fit` did before the allocation-free rework.
    /// Kept as the ground truth [`SequenceClassifier::fit`] must match
    /// bitwise (property-tested in this crate and in the repo's determinism
    /// suite).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or feature widths mismatch the config.
    pub fn fit_reference(&mut self, data: &[SeqExample]) -> EpochStats {
        assert!(!data.is_empty(), "fit called with no data");
        for ex in data {
            assert_eq!(ex.width(), self.config.input_size, "feature width mismatch");
            assert!(
                ex.labels.iter().all(|&l| l < self.config.classes),
                "label out of range"
            );
        }
        let weights = self
            .config
            .class_weights
            .clone()
            .unwrap_or_else(|| uniform_weights(self.config.classes));
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e3779b97f4a7c15);
        let mut order: Vec<usize> = (0..data.len()).collect();

        let mut opt_wx: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wx.len(), self.config.learning_rate))
            .collect();
        let mut opt_wh: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.wh.len(), self.config.learning_rate))
            .collect();
        let mut opt_b: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(l.b.len(), self.config.learning_rate))
            .collect();
        let mut opt_hw = Adam::new(self.head.w.len(), self.config.learning_rate);
        let mut opt_hb = Adam::new(self.head.b.len(), self.config.learning_rate);

        self.history.clear();
        let batch_size = self.config.batch_size.max(1);
        let mut last = EpochStats {
            mean_loss: 0.0,
            accuracy: 0.0,
        };
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut loss_count = 0usize;
            let mut correct = 0usize;
            for batch in order.chunks(batch_size) {
                let layers = &self.layers;
                let head = &self.head;
                let results = crate::par::par_map(batch, |_, &idx| {
                    Self::example_pass(layers, head, &data[idx], &weights)
                });

                // Fixed-order reduce: sum gradients and loss stats in batch
                // order, then average the gradients.
                let mut results = results.into_iter();
                let first = results.next().expect("chunks yields non-empty batches");
                let (mut layer_grads, mut head_grads) = (first.layer_grads, first.head_grads);
                for &l in &first.losses {
                    loss_sum += l as f64;
                }
                loss_count += first.losses.len();
                correct += first.correct;
                for pass in results {
                    for (acc, g) in layer_grads.iter_mut().zip(pass.layer_grads.iter()) {
                        acc.wx.add_assign(&g.wx);
                        acc.wh.add_assign(&g.wh);
                        for (a, &b) in acc.b.iter_mut().zip(g.b.iter()) {
                            *a += b;
                        }
                    }
                    head_grads.w.add_assign(&pass.head_grads.w);
                    for (a, &b) in head_grads.b.iter_mut().zip(pass.head_grads.b.iter()) {
                        *a += b;
                    }
                    for &l in &pass.losses {
                        loss_sum += l as f64;
                    }
                    loss_count += pass.losses.len();
                    correct += pass.correct;
                }

                // Average, clip and apply one optimizer step per batch.
                {
                    let mut bufs: Vec<&mut [f32]> = Vec::new();
                    for g in layer_grads.iter_mut() {
                        bufs.push(g.wx.as_mut_slice());
                        bufs.push(g.wh.as_mut_slice());
                        bufs.push(&mut g.b);
                    }
                    bufs.push(head_grads.w.as_mut_slice());
                    bufs.push(&mut head_grads.b);
                    if batch.len() > 1 {
                        let inv = 1.0 / batch.len() as f32;
                        for buf in bufs.iter_mut() {
                            for v in buf.iter_mut() {
                                *v *= inv;
                            }
                        }
                    }
                    clip_global_norm(&mut bufs, self.config.clip_norm);
                }
                for (i, g) in layer_grads.iter().enumerate() {
                    opt_wx[i].step(self.layers[i].wx.as_mut_slice(), g.wx.as_slice());
                    opt_wh[i].step(self.layers[i].wh.as_mut_slice(), g.wh.as_slice());
                    opt_b[i].step(&mut self.layers[i].b, &g.b);
                }
                opt_hw.step(self.head.w.as_mut_slice(), head_grads.w.as_slice());
                opt_hb.step(&mut self.head.b, &head_grads.b);
            }
            last = EpochStats {
                mean_loss: if loss_count > 0 {
                    (loss_sum / loss_count as f64) as f32
                } else {
                    0.0
                },
                accuracy: if loss_count > 0 {
                    correct as f64 / loss_count as f64
                } else {
                    0.0
                },
            };
            self.history.push(last);
        }
        last
    }

    /// Predicts the per-timestep class probabilities for one sequence. An
    /// empty sequence yields an empty prediction — length-0 iterations do
    /// occur in faulted traces and must not abort the whole attack.
    pub fn predict_proba(&self, features: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        assert_eq!(
            features[0].len(),
            self.config.input_size,
            "feature width mismatch"
        );
        let mut cur = Self::features_to_matrix(features);
        for layer in &self.layers {
            cur = layer.forward(&cur).h;
        }
        let logits = self.head.forward(&cur);
        (0..logits.rows())
            .map(|t| crate::activation::softmax(logits.row(t)))
            .collect()
    }

    /// Predicts the per-timestep class labels for one sequence.
    pub fn predict(&self, features: &[Vec<f32>]) -> Vec<usize> {
        self.predict_proba(features)
            .iter()
            .map(|p| argmax(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic task: class = quadrant of the (noisy) 2-d input.
    fn quadrant_dataset(n: usize, t: usize, seed: u64) -> Vec<SeqExample> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut features = Vec::with_capacity(t);
                let mut labels = Vec::with_capacity(t);
                for _ in 0..t {
                    let lab = rng.gen_range(0..4usize);
                    let (sx, sy) = match lab {
                        0 => (1.0, 1.0),
                        1 => (-1.0, 1.0),
                        2 => (-1.0, -1.0),
                        _ => (1.0, -1.0),
                    };
                    features.push(vec![
                        sx + rng.gen_range(-0.2f32..0.2),
                        sy + rng.gen_range(-0.2f32..0.2),
                    ]);
                    labels.push(lab);
                }
                SeqExample::new(features, labels)
            })
            .collect()
    }

    #[test]
    fn learns_separable_per_timestep_task() {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 25;
        cfg.seed = 11;
        let data = quadrant_dataset(16, 8, 3);
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(stats.accuracy > 0.9, "train accuracy too low: {:?}", stats);
        // Generalizes to fresh sequences from the same distribution.
        let test = quadrant_dataset(4, 8, 999);
        let mut correct = 0;
        let mut total = 0;
        for ex in &test {
            let pred = clf.predict(&ex.features);
            for (p, &l) in pred.iter().zip(&ex.labels) {
                total += 1;
                if *p == l {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.85,
            "{}/{}",
            correct,
            total
        );
    }

    #[test]
    fn uses_context_for_ambiguous_timesteps() {
        // The label of every timestep equals the label carried by the first
        // timestep's one-hot; later inputs are zero. Solving this requires
        // memory, which a per-timestep (memoryless) classifier cannot have.
        let mut data = Vec::new();
        for lab in 0..2usize {
            for _ in 0..6 {
                let mut features = vec![vec![0.0, 0.0]; 6];
                features[0][lab] = 1.0;
                data.push(SeqExample::new(features, vec![lab; 6]));
            }
        }
        let mut cfg = SeqClassifierConfig::new(2, 10, 2);
        cfg.epochs = 60;
        cfg.seed = 21;
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(
            stats.accuracy > 0.95,
            "LSTM failed to carry context: {:?}",
            stats
        );
    }

    #[test]
    fn masked_timesteps_do_not_drive_learning() {
        // Two classes with identical features; class-1 labels only ever
        // appear masked, so the model should keep predicting class 0.
        let mut data = Vec::new();
        for _ in 0..8 {
            let features = vec![vec![1.0]; 4];
            data.push(SeqExample::with_mask(
                features.clone(),
                vec![0, 1, 0, 1],
                vec![true, false, true, false],
            ));
        }
        let mut cfg = SeqClassifierConfig::new(1, 6, 2);
        cfg.epochs = 30;
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(stats.accuracy > 0.95, "{:?}", stats);
        let pred = clf.predict(&data[0].features);
        assert!(pred.iter().all(|&p| p == 0), "{:?}", pred);
    }

    #[test]
    fn minibatch_training_learns_separable_task() {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 25;
        cfg.seed = 11;
        cfg.batch_size = 4;
        let data = quadrant_dataset(16, 8, 3);
        let mut clf = SequenceClassifier::new(cfg);
        let stats = clf.fit(&data);
        assert!(
            stats.accuracy > 0.9,
            "batched train accuracy too low: {:?}",
            stats
        );
    }

    #[test]
    fn fit_is_bitwise_thread_count_invariant() {
        let data = quadrant_dataset(10, 6, 13);
        for batch_size in [1usize, 4] {
            let mut cfg = SeqClassifierConfig::new(2, 8, 4);
            cfg.epochs = 4;
            cfg.batch_size = batch_size;
            let run = |threads: usize| {
                let cfg = cfg.clone();
                let data = &data;
                crate::par::with_threads(threads, move || {
                    let mut clf = SequenceClassifier::new(cfg);
                    clf.fit(data);
                    clf
                })
            };
            let one = run(1);
            let eight = run(8);
            assert_eq!(
                one.history(),
                eight.history(),
                "history differs (batch {})",
                batch_size
            );
            for (a, b) in one.layers.iter().zip(&eight.layers) {
                assert_eq!(a.wx, b.wx, "wx differs (batch {})", batch_size);
                assert_eq!(a.wh, b.wh, "wh differs (batch {})", batch_size);
                assert_eq!(a.b, b.b, "b differs (batch {})", batch_size);
            }
            assert_eq!(
                one.head.w, eight.head.w,
                "head differs (batch {})",
                batch_size
            );
            assert_eq!(
                one.head.b, eight.head.b,
                "head bias differs (batch {})",
                batch_size
            );
        }
    }

    #[test]
    fn fit_matches_allocating_reference_bitwise() {
        // `batch_size = 1` (single-example minibatches) and `t_len = 1`
        // (single-timestep sequences) sit at the generator floors, so every
        // counterexample shrinks toward the classic per-example schedule.
        let shapes = testkit::gen::zip3(
            testkit::gen::usize_in(1, 5), // batch_size
            testkit::gen::usize_in(1, 8), // thread count
            testkit::gen::usize_in(1, 5), // timesteps per sequence
        );
        testkit::check(
            "seq_fit_pooled_vs_reference",
            &shapes,
            |&(batch_size, threads, t_len)| {
                let data = quadrant_dataset(6, t_len, 13);
                let mut cfg = SeqClassifierConfig::new(2, 6, 4);
                cfg.epochs = 3;
                cfg.batch_size = batch_size;
                let (pooled, reference) = crate::par::with_threads(threads, || {
                    let mut a = SequenceClassifier::new(cfg.clone());
                    a.fit(&data);
                    let mut b = SequenceClassifier::new(cfg.clone());
                    b.fit_reference(&data);
                    (a, b)
                });
                testkit::prop::holds(pooled.history() == reference.history(), "history differs")?;
                for (a, b) in pooled.layers.iter().zip(&reference.layers) {
                    testkit::prop::holds(a.wx == b.wx, "wx differs")?;
                    testkit::prop::holds(a.wh == b.wh, "wh differs")?;
                    testkit::prop::holds(a.b == b.b, "b differs")?;
                }
                testkit::prop::holds(pooled.head.w == reference.head.w, "head w differs")?;
                testkit::prop::holds(pooled.head.b == reference.head.b, "head b differs")
            },
        );
    }

    #[test]
    fn predict_handles_empty_and_single_step_sequences() {
        let mut cfg = SeqClassifierConfig::new(2, 6, 4);
        cfg.epochs = 2;
        let data = quadrant_dataset(4, 3, 5);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        // Length-0: an empty prediction, not a panic (faulted traces can
        // produce empty iterations).
        assert!(clf.predict_proba(&[]).is_empty());
        assert!(clf.predict(&[]).is_empty());
        // Length-1: exactly one per-timestep distribution, consistent with
        // `predict`, for any feature row.
        let row = testkit::gen::vec_of(testkit::gen::f32_in(-1.0, 1.0), 2, 2);
        testkit::check("seq_predict_len1", &row, |row| {
            let p = clf.predict_proba(std::slice::from_ref(row));
            testkit::prop::holds(p.len() == 1, "len-1 sequence must give one prediction")?;
            let sum: f32 = p[0].iter().sum();
            testkit::prop::holds((sum - 1.0).abs() < 1e-4, "probabilities must sum to 1")?;
            testkit::prop::holds(
                clf.predict(std::slice::from_ref(row)) == vec![argmax(&p[0])],
                "predict must be the argmax of predict_proba",
            )
        });
    }

    #[test]
    fn history_is_recorded_per_epoch() {
        let mut cfg = SeqClassifierConfig::new(2, 4, 4);
        cfg.epochs = 3;
        let data = quadrant_dataset(4, 4, 7);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        assert_eq!(clf.history().len(), 3);
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 15;
        let data = quadrant_dataset(12, 8, 5);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data);
        let first = clf.history().first().unwrap().mean_loss;
        let last = clf.history().last().unwrap().mean_loss;
        assert!(
            last < first * 0.7,
            "loss did not decrease: {} -> {}",
            first,
            last
        );
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_validates_width() {
        let cfg = SeqClassifierConfig::new(3, 4, 2);
        let clf = SequenceClassifier::new(cfg);
        let _ = clf.predict(&[vec![0.0; 2]]);
    }

    #[test]
    fn param_count_is_positive_and_consistent() {
        let cfg = SeqClassifierConfig::new(10, 16, 4);
        let clf = SequenceClassifier::new(cfg);
        // wx: 64*10, wh: 64*16, b: 64, head: 4*16+4
        assert_eq!(clf.param_count(), 64 * 10 + 64 * 16 + 64 + 4 * 16 + 4);
    }
}
