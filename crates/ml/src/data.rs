//! Sequence datasets for the per-timestep classifiers, plus small utilities
//! (one-hot encoding, shuffled train/test splits).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One labeled sequence: per-timestep feature vectors, target classes, and a
/// loss mask (`true` = this timestep contributes to the training loss).
///
/// The mask implements the paper's `Mop` trick of neglecting the loss of
/// samples irrelevant to `OtherOp` while still feeding them forward.
#[derive(Debug, Clone)]
pub struct SeqExample {
    /// T feature vectors, all of equal width.
    pub features: Vec<Vec<f32>>,
    /// T class labels.
    pub labels: Vec<usize>,
    /// T loss-mask flags.
    pub mask: Vec<bool>,
}

impl SeqExample {
    /// Creates an example with every timestep unmasked.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, the sequence is empty, or feature widths are
    /// ragged.
    pub fn new(features: Vec<Vec<f32>>, labels: Vec<usize>) -> Self {
        let mask = vec![true; labels.len()];
        Self::with_mask(features, labels, mask)
    }

    /// Creates an example with an explicit loss mask.
    pub fn with_mask(features: Vec<Vec<f32>>, labels: Vec<usize>, mask: Vec<bool>) -> Self {
        assert!(!features.is_empty(), "empty sequence");
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        assert_eq!(features.len(), mask.len(), "features/mask length mismatch");
        let width = features[0].len();
        assert!(
            features.iter().all(|f| f.len() == width),
            "ragged feature rows"
        );
        SeqExample {
            features,
            labels,
            mask,
        }
    }

    /// Sequence length in timesteps.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the sequence is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.features[0].len()
    }
}

/// One-hot encodes `label` into a vector of length `classes`.
///
/// # Panics
///
/// Panics if `label >= classes`.
pub fn one_hot(label: usize, classes: usize) -> Vec<f32> {
    assert!(
        label < classes,
        "one_hot label {} out of range {}",
        label,
        classes
    );
    let mut v = vec![0.0; classes];
    v[label] = 1.0;
    v
}

/// Splits items into `(train, test)` with the given test fraction, after an
/// in-place shuffle driven by `rng`.
///
/// # Panics
///
/// Panics unless `0.0 <= test_fraction < 1.0`.
pub fn train_test_split<T>(
    mut items: Vec<T>,
    test_fraction: f64,
    rng: &mut StdRng,
) -> (Vec<T>, Vec<T>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    items.shuffle(rng);
    let test_len = ((items.len() as f64) * test_fraction).round() as usize;
    let train_len = items.len() - test_len;
    let test = items.split_off(train_len);
    (items, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_hot_encoding() {
        assert_eq!(one_hot(2, 4), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_out_of_range_panics() {
        one_hot(4, 4);
    }

    #[test]
    fn example_validates_shapes() {
        let ex = SeqExample::new(vec![vec![1.0, 2.0]; 3], vec![0, 1, 0]);
        assert_eq!(ex.len(), 3);
        assert_eq!(ex.width(), 2);
        assert!(!ex.is_empty());
        assert!(ex.mask.iter().all(|&m| m));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_labels_panic() {
        let _ = SeqExample::new(vec![vec![1.0]; 3], vec![0, 1]);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<usize> = (0..100).collect();
        let (train, test) = train_test_split(items, 0.2, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<usize> = train.into_iter().chain(test).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_zero_fraction_keeps_everything_in_train() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(vec![1, 2, 3], 0.0, &mut rng);
        assert_eq!(train.len(), 3);
        assert!(test.is_empty());
    }
}
