//! Persistent deterministic worker pool — the dispatch backend behind
//! [`super::par_map`], [`super::par_map_mut`] and [`super::join`].
//!
//! # Why a pool
//!
//! The original engine spawned fresh `std::thread::scope` workers on every
//! call, costing tens of microseconds per worker per call. That tax forced
//! every small fan-out behind a work-size gate ([`super::thresholds`]),
//! pushed intra-fit parallelism out to the cross-model layer, and — worst —
//! was paid once per lockstep round by the fleet orchestrator
//! (`moscons::fleet::run_fleet`), exactly the sustained-throughput path the
//! streaming attack cares about. The pool spawns workers once, parks them on
//! a condvar, and amortizes thread startup across the whole attack: a
//! dispatch is an enqueue + wake, not N `clone(2)` syscalls.
//!
//! # Determinism by static partition
//!
//! A dispatch divides the `n` items into a **chunk partition that is a pure
//! function of the requested worker count and `n`** (`chunk_layout`).
//! Each chunk covers a fixed contiguous index range and writes its results
//! into pre-assigned output slots; which thread executes which chunk is a
//! scheduling accident, the `(index, item) -> slot` mapping never varies.
//! Since every job closure is a pure function of its index and item (the
//! [`super`] contract), results are bitwise identical for any worker count
//! and any claim interleaving — the same argument that made the scoped path
//! thread-count invariant, now held *by construction* rather than by a
//! post-hoc sort.
//!
//! # Lifetime erasure and the safety argument
//!
//! Pool workers are `'static` threads, but jobs borrow the caller's stack
//! (the item slice, the closure, the output buffer). The borrow is erased to
//! a raw pointer for the trip through the queue, which is the one `unsafe`
//! trick in this module (the rest is slot-buffer plumbing around it), and it
//! is sound because of a single structural guarantee:
//!
//! > **A dispatch does not return — normally or by unwind — until every
//! > chunk of its job has finished running.**
//!
//! `dispatch` enqueues, helps run chunks itself, then blocks on the job's
//! completion latch; the `JobGuard` returned by `enqueue` enforces the
//! same wait from its `Drop` impl, so even a panic on the dispatching thread
//! cannot unwind the borrowed frames while a worker still holds the erased
//! pointer. Workers touch the pointer only while executing a claimed chunk,
//! and chunks can only be claimed before the latch closes. Every `unsafe`
//! block below carries its own `SAFETY:` comment tying it back to this
//! argument; leaky-lint rule D5 confines `unsafe` to this file and
//! `ml::simd`.
//!
//! # Panic containment
//!
//! A panicking job closure must not kill a pool worker (the worker is shared
//! state for every later dispatch) and must not deadlock the dispatcher.
//! Each chunk runs under `catch_unwind`; the first payload is parked in the
//! job and re-raised on the *dispatching* thread once the whole job has
//! drained, so a panic propagates exactly as it did on the scoped path while
//! the workers live on. Output slots written before a panic are leaked, not
//! dropped — the completion state does not record which individual slots
//! were initialized, and leaking on the panic path is strictly safer than
//! guessing.
//!
//! The pool is enabled by default; `LEAKY_DNN_POOL=off` (or `0` / `false`)
//! falls back to the scoped-spawn path in [`super`], kept for differential
//! testing — both backends are bitwise identical, which
//! `tests/determinism.rs` pins on the full pipeline.

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Target chunks per requested worker. More chunks than workers lets the
/// dynamic *claiming* (not the partition, which stays static) load-balance
/// uneven items — e.g. the profiling tail schedules its five oversized
/// `Mhp` tasks first and small chunks let fast workers take up the slack.
const CHUNKS_PER_WORKER: usize = 4;

/// Hard cap on resident pool threads. Tests force worker counts well above
/// the core count (`with_threads(8)` on a 1-core box is routine and safe);
/// the cap only exists so a pathological override cannot spawn unbounded
/// OS threads.
const MAX_POOL_THREADS: usize = 256;

/// Process-wide backend override installed by [`super::with_pool`]:
/// 0 = unset (env probe), 1 = force scoped fallback, 2 = force pool.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached result of the `LEAKY_DNN_POOL` probe.
static DETECTED: OnceLock<bool> = OnceLock::new();

fn detect() -> bool {
    match std::env::var("LEAKY_DNN_POOL") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    }
}

/// Whether dispatches go to the persistent pool (default) or the legacy
/// scoped-spawn fallback (`LEAKY_DNN_POOL=off`). Resolution order: the
/// [`super::with_pool`] override, then the cached environment probe. Like
/// [`crate::simd::enabled`], the override is process-wide because both
/// backends are bitwise-equal — a concurrent caller observing the other
/// backend is a scheduling detail, never an arithmetic one.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *DETECTED.get_or_init(detect),
    }
}

pub(super) fn set_override(mode: u8) -> u8 {
    OVERRIDE.swap(mode, Ordering::Relaxed)
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// The static chunk partition: for `n` items at a requested worker count
/// `workers`, returns `(chunk_size, chunk_count)`. Pure function of its
/// inputs — this is what makes pool results thread-count invariant by
/// construction (module docs).
fn chunk_layout(workers: usize, n: usize) -> (usize, usize) {
    debug_assert!(n > 0);
    let target = workers.saturating_mul(CHUNKS_PER_WORKER).clamp(1, n.max(1));
    let size = n.div_ceil(target);
    (size, n.div_ceil(size))
}

/// One dispatched job: the lifetime-erased chunk runner plus claim and
/// completion state. Shared `Arc`-style between the dispatcher and the
/// workers; the raw `run` pointer is only dereferenced for chunk indices
/// claimed before the completion latch closes (see the module docs).
struct Job {
    /// Erased `&(dyn Fn(usize) + Sync)` borrowed from the dispatching
    /// frame. Valid until `done == chunks` is observed by the dispatcher,
    /// which blocks until then.
    run: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Total chunks in the partition.
    chunks: usize,
    /// Completed chunks; the job is finished when this reaches `chunks`.
    done: AtomicUsize,
    /// First panic payload raised by any chunk, re-raised by the dispatcher.
    panic: Mutex<Option<PanicPayload>>,
    /// Completion latch: `cv` is signalled under `wait` when the last chunk
    /// finishes.
    wait: Mutex<()>,
    cv: Condvar,
}

// Shared between the dispatching thread and pool workers; the raw `run`
// pointer targets a `Sync` closure whose frame the dispatcher keeps alive
// until the completion latch closes (module docs).
// SAFETY: every field is atomic, lock-protected, or the `Sync` closure, so
// cross-thread moves and shared `&`-calls are sound.
unsafe impl Send for Job {}
// SAFETY: see the `Send` argument above — shared access is `&self` only and
// every field is either atomic, lock-protected, or the `Sync` closure.
unsafe impl Sync for Job {}

impl Job {
    /// Claims the next unexecuted chunk, if any.
    fn claim(&self) -> Option<usize> {
        // Over-increment past `chunks` is bounded by the number of claiming
        // threads and harmless: claimed-but-out-of-range indices run nothing.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.chunks).then_some(i)
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.chunks
    }

    fn finished(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.chunks
    }

    /// Runs one claimed chunk, containing any panic, and signals the
    /// completion latch when it was the last one.
    fn run_chunk(&self, ci: usize) {
        // SAFETY: `ci` was claimed before the completion latch closed, so
        // the dispatcher still blocks in `JobGuard` and the borrowed closure
        // is alive; it is `Sync`, so concurrent chunk calls are sound.
        let run = unsafe { &*self.run };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(ci))) {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        // AcqRel chains every chunk's slot writes into the release sequence
        // the dispatcher's Acquire load of the final count synchronizes with.
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks {
            let _latch = self.wait.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }
}

struct Shared {
    /// FIFO of live jobs. A job stays queued until its chunks are all
    /// claimed; concurrent dispatches from independent threads simply
    /// coexist in the queue.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Wakes parked workers when a job arrives.
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Worker threads spawned so far (grow-only, capped).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn global() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Grows the resident worker set to at least `target` threads (capped at
    /// [`MAX_POOL_THREADS`]). Workers are spawned lazily on first demand and
    /// never exit; a failed OS spawn degrades capacity instead of panicking —
    /// the dispatcher always helps run its own job, so completion never
    /// depends on pool threads existing at all.
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_POOL_THREADS);
        let mut spawned = self.spawned.lock().unwrap_or_else(|e| e.into_inner());
        while *spawned < target {
            let shared = Arc::clone(&self.shared);
            let builder = std::thread::Builder::new().name(format!("leaky-pool-{}", *spawned));
            if builder.spawn(move || worker_loop(&shared)).is_err() {
                break;
            }
            *spawned += 1;
        }
    }
}

/// The resident worker body: park on the condvar until a job shows up,
/// claim and run chunks until the front job drains, repeat forever.
fn worker_loop(shared: &Shared) {
    // Workers run nested `par_map`/`join` calls serially instead of
    // re-dispatching (oversubscription, never divergence — `super::threads`
    // reports 1 inside the pool).
    super::enter_worker_context();
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                while q.front().is_some_and(|j| j.exhausted()) {
                    q.pop_front();
                }
                if let Some(job) = q.front() {
                    break Arc::clone(job);
                }
                q = shared.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        while let Some(ci) = job.claim() {
            job.run_chunk(ci);
        }
    }
}

/// An enqueued job the current thread is responsible for draining. Dropping
/// the guard (including during an unwind of the dispatcher's own code)
/// helps finish the job and blocks until every chunk has run — the
/// structural guarantee the lifetime erasure rests on.
struct JobGuard {
    job: Arc<Job>,
}

impl JobGuard {
    /// Claims and runs chunks on the calling thread, then blocks until the
    /// stragglers finish. The dispatcher counts as a worker: even with zero
    /// pool threads the job completes.
    fn help_and_wait(&self) {
        // Chunks executed by the dispatcher observe the same pool context
        // as worker threads: nested parallel calls stay serial.
        let _ctx = super::enter_pool_scope();
        while let Some(ci) = self.job.claim() {
            self.job.run_chunk(ci);
        }
        drop(_ctx);
        let mut latch = self.job.wait.lock().unwrap_or_else(|e| e.into_inner());
        while !self.job.finished() {
            latch = self.job.cv.wait(latch).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drains the job and re-raises the first chunk panic, if any.
    fn finish(self) {
        self.help_and_wait();
        let payload = self
            .job
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        // Disarm the drop guard before unwinding: the job is already drained.
        std::mem::forget(self);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        // Reached only when the dispatcher's own code unwound between
        // enqueue and finish (e.g. a panicking `join` closure on the local
        // side). The job must still drain before the borrowed frames die;
        // any chunk panic is swallowed because one unwind is already in
        // flight. `run_chunk` never panics itself, so this Drop cannot
        // double-panic.
        self.help_and_wait();
    }
}

/// Enqueues a lifetime-erased job over `chunks` chunks and wakes up to
/// `workers - 1` pool threads to help. The caller MUST drain the returned
/// guard before `run`'s frame dies; the guard's `Drop` enforces it.
fn enqueue(workers: usize, chunks: usize, run: &(dyn Fn(usize) + Sync)) -> JobGuard {
    // SAFETY: lifetime erasure only — the pointee is kept alive by the
    // dispatching frame, and `JobGuard` (drained by `finish` or `Drop`)
    // guarantees that frame outlives every dereference (module docs).
    let run: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync + 'static)>(
            run,
        )
    };
    let job = Arc::new(Job {
        run,
        next: AtomicUsize::new(0),
        chunks,
        done: AtomicUsize::new(0),
        panic: Mutex::new(None),
        wait: Mutex::new(()),
        cv: Condvar::new(),
    });
    let pool = global();
    pool.ensure_workers(workers.saturating_sub(1));
    {
        let mut q = pool.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(Arc::clone(&job));
    }
    pool.shared.work_cv.notify_all();
    JobGuard { job }
}

/// Dispatches `run` over the static chunk partition and blocks until every
/// chunk has executed. Re-raises the first chunk panic on this thread.
fn dispatch(workers: usize, chunks: usize, run: &(dyn Fn(usize) + Sync)) {
    enqueue(workers, chunks, run).finish();
}

/// Raw-pointer wrapper that lets the chunk closures scatter results into
/// caller-owned buffers from worker threads.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct `.0` use inside the job closures) so
    /// edition-2021 disjoint capture moves the whole `SendPtr` — keeping
    /// the closure `Sync` via the wrapper instead of capturing the bare
    /// non-`Sync` raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer targets a caller-owned buffer that outlives the job
// (`JobGuard` argument, module docs), every chunk writes a disjoint index
// range of it, and `T: Send` lets the written values cross threads.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared access is address arithmetic only (`.0.add(i)`); actual
// writes target disjoint per-chunk slots, see the `Send` argument.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Converts a fully-initialized `MaybeUninit` buffer into the result vector.
///
/// # Safety
///
/// Every element of `buf` must be initialized.
// SAFETY: unsafe-fn declaration — the obligation is the `# Safety` doc
// contract above, discharged at each call site.
unsafe fn assume_init_vec<R>(buf: Vec<MaybeUninit<R>>) -> Vec<R> {
    let mut buf = std::mem::ManuallyDrop::new(buf);
    let (ptr, len, cap) = (buf.as_mut_ptr(), buf.len(), buf.capacity());
    // SAFETY: caller guarantees initialization; `MaybeUninit<R>` has the
    // same layout as `R`, and `ManuallyDrop` forfeits the old ownership so
    // the allocation is owned exactly once.
    unsafe { Vec::from_raw_parts(ptr.cast::<R>(), len, cap) }
}

/// Pool backend of [`super::par_map`]: static chunk partition, results
/// written to pre-assigned slots, bitwise identical to the serial loop.
pub(super) fn par_map_pooled<T, R, F>(items: &[T], f: &F, workers: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let (size, chunks) = chunk_layout(workers, n);
    let mut out: Vec<MaybeUninit<R>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let run = move |ci: usize| {
        let start = ci * size;
        let end = (start + size).min(n);
        for i in start..end {
            let value = f(i, &items[i]);
            // SAFETY: chunk `ci` exclusively owns slots `start..end` (the
            // static partition is disjoint by construction) and `out` lives
            // until `dispatch` returns, which is after every chunk ran.
            unsafe { out_ptr.get().add(i).write(MaybeUninit::new(value)) };
        }
    };
    dispatch(workers, chunks, &run);
    // A chunk panic would have propagated out of `dispatch` above, leaking
    // (not dropping) any initialized slots — safe, and unreachable here.
    // SAFETY: dispatch returned normally, so all `chunks` chunks ran to
    // completion and every slot `0..n` is initialized.
    unsafe { assume_init_vec(out) }
}

/// Pool backend of [`super::par_map_mut`]: same static partition over
/// exclusive element access.
pub(super) fn par_map_mut_pooled<T, R, F>(items: &mut [T], f: &F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let (size, chunks) = chunk_layout(workers, n);
    let mut out: Vec<MaybeUninit<R>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let items_ptr = SendPtr(items.as_mut_ptr());
    let run = move |ci: usize| {
        let start = ci * size;
        let end = (start + size).min(n);
        for i in start..end {
            // SAFETY: chunk `ci` exclusively owns items `start..end` — the
            // static partition is disjoint, so no element is aliased — and
            // the slice outlives `dispatch` (JobGuard argument).
            let item = unsafe { &mut *items_ptr.get().add(i) };
            let value = f(i, item);
            // SAFETY: disjoint output slots, same argument as par_map_pooled.
            unsafe { out_ptr.get().add(i).write(MaybeUninit::new(value)) };
        }
    };
    dispatch(workers, chunks, &run);
    // SAFETY: dispatch returned normally ⇒ every slot is initialized.
    unsafe { assume_init_vec(out) }
}

/// Pool backend of [`super::join`]: `b` is shipped to the pool as a
/// single-chunk job while `a` runs on the calling thread; the guard then
/// drains the job (running `b` locally if no worker picked it up yet).
pub(super) fn join_pooled<RA, RB>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let b_fn = Mutex::new(Some(b));
    let rb_slot: Mutex<Option<RB>> = Mutex::new(None);
    let run = |_ci: usize| {
        let Some(bf) = b_fn.lock().unwrap_or_else(|e| e.into_inner()).take() else {
            return; // single chunk: claimed exactly once, so never reached
        };
        let rb = bf();
        *rb_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(rb);
    };
    let guard = enqueue(2, 1, &run);
    // If `a` panics, `guard`'s Drop still drains `b` before the borrowed
    // `b_fn`/`rb_slot` frames unwind.
    let ra = a();
    guard.finish();
    let rb = rb_slot
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .expect("single-chunk job ran to completion");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_layout_is_pure_and_covers_all_items() {
        for workers in 1..=9 {
            for n in 1..=130 {
                let (size, chunks) = chunk_layout(workers, n);
                assert!(size >= 1);
                assert_eq!(chunks, n.div_ceil(size), "no empty tail chunks");
                assert!(size * chunks >= n, "partition covers every item");
                assert!(size * (chunks - 1) < n, "last chunk is non-empty");
                // Pure function: same inputs, same layout.
                assert_eq!((size, chunks), chunk_layout(workers, n));
            }
        }
    }

    #[test]
    fn chunk_layout_balances_more_chunks_than_workers() {
        let (_, chunks) = chunk_layout(2, 1000);
        assert_eq!(chunks, 2 * CHUNKS_PER_WORKER);
        // Tiny inputs degenerate to one item per chunk.
        let (size, chunks) = chunk_layout(8, 3);
        assert_eq!((size, chunks), (1, 3));
    }

    #[test]
    fn pooled_map_matches_serial_at_any_worker_count() {
        let items: Vec<f32> = (0..257).map(|i| i as f32 * 0.73).collect();
        let f = |i: usize, x: &f32| x.sin() * x.cos() + i as f32;
        let serial: Vec<f32> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for workers in [2usize, 3, 8] {
            assert_eq!(par_map_pooled(&items, &f, workers), serial);
        }
    }

    #[test]
    fn pooled_join_runs_both_sides() {
        for _ in 0..16 {
            let (a, b) = join_pooled(|| 6 * 7, || "side".len());
            assert_eq!((a, b), (42, 4));
        }
    }

    #[test]
    fn panicking_chunk_propagates_but_keeps_pool_alive() {
        let items: Vec<usize> = (0..64).collect();
        for round in 0..3 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_map_pooled(
                    &items,
                    &|i: usize, _: &usize| {
                        if i == 33 {
                            panic!("chunk bomb {round}");
                        }
                        i
                    },
                    4,
                )
            }));
            assert!(caught.is_err(), "panic must propagate to the dispatcher");
            // The very next dispatch must run normally on the same workers.
            let ok = par_map_pooled(&items, &|i: usize, &x: &usize| i + x, 4);
            assert_eq!(ok, (0..128).step_by(2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrent_dispatchers_share_the_queue() {
        // Two independent user threads dispatching at once: jobs coexist in
        // the FIFO and each dispatcher drains its own. (Plain threads here,
        // not the pool, precisely because the pool is the thing under test.)
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    s.spawn(move || {
                        let items: Vec<usize> = (0..200).map(|i| i + t * 1000).collect();
                        par_map_pooled(&items, &|_, &x: &usize| x * 2, 4)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
                .collect()
        });
        for (t, out) in results.iter().enumerate() {
            let expect: Vec<usize> = (0..200).map(|i| (i + t * 1000) * 2).collect();
            assert_eq!(out, &expect);
        }
    }
}
