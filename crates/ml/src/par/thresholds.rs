//! Work-size gates for every parallel fan-out in the workspace.
//!
//! Each [`super::par_map`]/[`super::par_map_if_work`] call dispatches to
//! the persistent worker pool ([`super::pool`]) — an enqueue plus a condvar
//! wake — so every parallel site gates on a minimum amount of work below
//! which it stays serial. Results are bitwise identical on either path (the
//! pool is thread-count invariant), so each threshold is purely a
//! scheduling decision — but a *scattered* one is impossible to audit or
//! retune. This module is the single home for all of them, enforced
//! statically by `leaky-lint` rule A4 (`threshold-confinement`): a
//! `MIN_PARALLEL_*` constant declared anywhere else in the workspace is a
//! lint error.
//!
//! Tuning provenance: the values below were retuned for the pool-era
//! dispatch cost measured by the `pool` section of `BENCH_pipeline.json` on
//! the 1-core CI reference box — ~0.6 us per tiny `par_map` dispatch and
//! ~2 us per `join`, versus ~85 us per dispatch (tens of microseconds per
//! spawned worker) on the retired scoped-spawn backend the previous,
//! roughly 8x-higher values were calibrated against. DESIGN.md §15 has the
//! before/after table. The gates trade nothing but scheduling overhead, so
//! retuning them can never change any result bitwise. Caveat: the
//! `LEAKY_DNN_POOL=off` fallback re-pays the scoped spawn tax these values
//! no longer budget for — that mode exists for differential testing, not
//! production throughput.

/// Minimum number of sequences in a training minibatch before
/// `ml::seq::SequenceClassifier::fit`'s bucket fan-out dispatches to the
/// worker pool.
///
/// A batch-4 fit was 0.81x *slower* at 8 threads under scoped spawning,
/// which pushed this gate to 32 and the thread win out to coarse
/// cross-model parallelism. A pool dispatch costs ~0.6 us — under the cost
/// of one sequence step even at quick scale — so the gate now only skips
/// near-trivial batches where chunk bookkeeping is comparable to the work.
pub const MIN_PARALLEL_FIT_SEQS: usize = 8;

/// Minimum number of feature rows in the base iteration before extraction
/// fans the five `Mhp` heads out over the worker pool (`moscons::attack`).
///
/// The scoped-spawn era measured the `attack_extract` stage at a 0.81x
/// "speedup" (i.e. a slowdown) at quick scale and gated at 2048 rows. A
/// ~0.6 us pool dispatch is amortized across a few hundred GBDT ensemble
/// walks, so quick-scale streams (hundreds to low thousands of rows) now
/// fan out too; only degenerate faulted traces stay serial.
pub const MIN_PARALLEL_EXTRACT_ROWS: usize = 256;

/// Minimum multiply-add count before `ml::matrix`'s blocked GEMM fans its
/// row blocks out over the worker pool. Products below this are not worth
/// dispatching for; the blocked and serial paths accumulate in the same
/// order and are bitwise equal.
///
/// At the few-flops-per-nanosecond serial rate of the scalar kernel,
/// `1 << 13` multiply-adds is a couple of microseconds of work — several
/// times the measured pool dispatch cost, the same overhead multiple the
/// scoped-era `1 << 15` bought against its ~10x-costlier spawns.
pub const MIN_PARALLEL_GEMM_FLOPS: usize = 1 << 13;

#[cfg(test)]
mod tests {
    use super::*;

    /// The gates are scheduling knobs, not correctness knobs — but they do
    /// have sanity ranges: zero would re-enable fan-out on trivial inputs
    /// where even a pool dispatch is pure overhead, and scoped-era
    /// magnitudes would silently serialize work the pool now wins on.
    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting consts is the point
    fn thresholds_are_in_sane_ranges() {
        assert!(MIN_PARALLEL_FIT_SEQS >= 2, "gate must skip trivial batches");
        assert!(
            MIN_PARALLEL_FIT_SEQS <= 32,
            "scoped-era gate magnitude would serialize small-batch fits the \
             pool dispatches profitably"
        );
        assert!((64..=2048).contains(&MIN_PARALLEL_EXTRACT_ROWS));
        assert!((1 << 10..=1 << 15).contains(&MIN_PARALLEL_GEMM_FLOPS));
    }

    /// The extraction gate admits quick-scale victim streams (hundreds to
    /// low thousands of rows) that the scoped-era 2048 gate kept serial,
    /// while still rejecting degenerate faulted traces.
    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting consts is the point
    fn extract_gate_separates_degenerate_from_quick_scale() {
        assert!(MIN_PARALLEL_EXTRACT_ROWS > 64); // degenerate traces stay serial
        assert!(MIN_PARALLEL_EXTRACT_ROWS <= 500); // quick scale fans out
    }
}
