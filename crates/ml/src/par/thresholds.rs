//! Work-size gates for every parallel fan-out in the workspace.
//!
//! Each [`super::par_map`]/[`super::par_map_if_work`] call spawns fresh
//! scoped workers costing tens of microseconds apiece, so every parallel
//! site gates on a minimum amount of work below which it stays serial.
//! Results are bitwise identical on either path (the pool is thread-count
//! invariant), so each threshold is purely a scheduling decision — but a
//! *scattered* one is impossible to audit or retune. This module is the
//! single home for all of them, enforced statically by `leaky-lint` rule
//! A4 (`threshold-confinement`): a `MIN_PARALLEL_*` constant declared
//! anywhere else in the workspace is a lint error.
//!
//! Tuning provenance: the values below were set against
//! `BENCH_pipeline.json` stage timings on the 1-core CI reference box
//! (see each constant's docs); they trade nothing but scheduling overhead,
//! so retuning them can never change any result bitwise.

/// Minimum number of sequences in a training minibatch before
/// `ml::seq::SequenceClassifier::fit`'s bucket fan-out spawns pool workers.
///
/// Below this the per-call scoped-spawn overhead dwarfs the work — the
/// pipeline's batch-4 fits ran 0.81x *slower* at 8 threads when every tiny
/// batch fanned out. Small-batch training stays serial; the thread win
/// comes from coarse cross-model parallelism in the profiling layer
/// instead.
pub const MIN_PARALLEL_FIT_SEQS: usize = 32;

/// Minimum number of feature rows in the base iteration before extraction
/// fans the five `Mhp` heads out over the worker pool (`moscons::attack`).
///
/// Below this, the tens of microseconds `ml::par` pays per spawned scoped
/// worker outweigh the classification work — `BENCH_pipeline.json`
/// measured the `attack_extract` stage at a 0.81x "speedup" (i.e. a
/// slowdown) at quick scale before this gate existed. Paper-scale victim
/// streams clear the threshold comfortably.
pub const MIN_PARALLEL_EXTRACT_ROWS: usize = 2048;

/// Minimum multiply-add count before `ml::matrix`'s blocked GEMM fans its
/// row blocks out over the worker pool. Products below this are not worth
/// spawning for; the blocked and serial paths accumulate in the same order
/// and are bitwise equal.
pub const MIN_PARALLEL_GEMM_FLOPS: usize = 1 << 15;

#[cfg(test)]
mod tests {
    use super::*;

    /// The gates are scheduling knobs, not correctness knobs — but they do
    /// have sanity ranges: zero would re-enable the pathological
    /// every-tiny-batch fan-out, and absurdly large values would silently
    /// serialize paper-scale runs.
    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting consts is the point
    fn thresholds_are_in_sane_ranges() {
        assert!(MIN_PARALLEL_FIT_SEQS >= 2, "gate must skip trivial batches");
        assert!(
            MIN_PARALLEL_FIT_SEQS <= 1024,
            "gate must not serialize paper-scale batches"
        );
        assert!((1024..=1 << 20).contains(&MIN_PARALLEL_EXTRACT_ROWS));
        assert!((1 << 10..=1 << 24).contains(&MIN_PARALLEL_GEMM_FLOPS));
    }

    /// The extraction gate admits paper-scale victim streams (tens of
    /// thousands of rows) and rejects the quick-scale streams that
    /// measured the 0.81x regression.
    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting consts is the point
    fn extract_gate_separates_quick_from_paper_scale() {
        assert!(MIN_PARALLEL_EXTRACT_ROWS > 500); // quick-scale stays serial
        assert!(MIN_PARALLEL_EXTRACT_ROWS < 20_000); // paper scale fans out
    }
}
