//! A LightGBM-style gradient boosting machine (binary logistic objective)
//! built on histogram [`RegressionTree`]s. This is the substrate behind the
//! paper's `Mgap` NOP/BUSY classifier (§IV-A uses LightGBM).

use crate::activation::sigmoid;
use crate::tree::{BinMapper, NodeArena, RegressionTree, TreeParams};

/// Configuration for [`GbdtBinaryClassifier`].
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f32,
    /// Histogram bin budget per feature.
    pub max_bins: usize,
    /// Weak-learner growth parameters.
    pub tree: TreeParams,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 40,
            learning_rate: 0.2,
            max_bins: 64,
            tree: TreeParams::default(),
        }
    }
}

/// Binary logistic GBDT: predicts `P(label = 1)`.
///
/// # Examples
///
/// ```
/// use ml::gbdt::{GbdtBinaryClassifier, GbdtConfig};
///
/// let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
/// let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
/// let model = GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default());
/// assert!(model.predict_proba(&[80.0]) > 0.9);
/// assert!(model.predict_proba(&[10.0]) < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct GbdtBinaryClassifier {
    mapper: BinMapper,
    base_score: f32,
    trees: Vec<RegressionTree>,
    /// SoA flattening of `trees` — the inference path. Built once at the end
    /// of `fit`; bitwise equal to walking `trees` (pinned by a testkit
    /// property), just cache-friendly: `Mgap`/`Mhp` score every streamed
    /// window, so the ensemble walk sits on the serving hot path.
    arena: NodeArena,
    learning_rate: f32,
    train_log_loss: Vec<f64>,
}

impl GbdtBinaryClassifier {
    /// Trains on rows/labels.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or of mismatched length.
    pub fn fit(rows: &[Vec<f32>], labels: &[bool], config: &GbdtConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit GBDT on empty data");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let mapper = BinMapper::fit(rows, config.max_bins);
        let binned: Vec<Vec<u16>> = crate::par::par_map(rows, |_, r| mapper.bin_row(r));

        let pos = labels.iter().filter(|&&l| l).count();
        let p = ((pos as f64 + 0.5) / (labels.len() as f64 + 1.0)).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p / (1.0 - p)).ln() as f32;

        let mut scores = vec![base_score; rows.len()];
        let mut trees = Vec::with_capacity(config.rounds);
        let mut train_log_loss = Vec::with_capacity(config.rounds);
        let indices: Vec<usize> = (0..rows.len()).collect();
        let mut grads = vec![0.0f32; rows.len()];
        let mut hess = vec![0.0f32; rows.len()];

        for _round in 0..config.rounds {
            let mut ll = 0.0f64;
            for i in 0..rows.len() {
                let prob = sigmoid(scores[i]);
                let y = if labels[i] { 1.0 } else { 0.0 };
                grads[i] = prob - y;
                hess[i] = (prob * (1.0 - prob)).max(1e-6);
                let p = (prob as f64).clamp(1e-9, 1.0 - 1e-9);
                ll -= if labels[i] { p.ln() } else { (1.0 - p).ln() };
            }
            train_log_loss.push(ll / rows.len() as f64);
            let tree = RegressionTree::fit(&binned, &mapper, &grads, &hess, &indices, &config.tree);
            // Per-round score refresh is embarrassingly parallel; results
            // come back in row order, so scores are thread-count invariant.
            // The serial path updates scores directly — same per-row order,
            // no per-round prediction buffer.
            if crate::par::threads() <= 1 {
                for (s, row) in scores.iter_mut().zip(binned.iter()) {
                    *s += config.learning_rate * tree.predict_binned(row);
                }
            } else {
                let preds = crate::par::par_map(&binned, |_, row| tree.predict_binned(row));
                for (s, p) in scores.iter_mut().zip(preds) {
                    *s += config.learning_rate * p;
                }
            }
            trees.push(tree);
        }

        let mut arena = NodeArena::new();
        for tree in &trees {
            arena.push_tree(tree);
        }

        GbdtBinaryClassifier {
            mapper,
            base_score,
            trees,
            arena,
            learning_rate: config.learning_rate,
            train_log_loss,
        }
    }

    /// Raw additive score (logit), evaluated over the flattened node arena.
    /// Bitwise equal to [`Self::decision_function_reference`]: identical
    /// leaf values, descend rule, and accumulation order.
    pub fn decision_function(&self, row: &[f32]) -> f32 {
        let binned = self.mapper.bin_row(row);
        let mut score = self.base_score;
        for t in 0..self.arena.tree_count() {
            score += self.learning_rate * self.arena.predict_binned(t, &binned);
        }
        score
    }

    /// Reference logit via the pointer-walk trees — the oracle the arena
    /// path is property-tested against. Not used on serving paths.
    pub fn decision_function_reference(&self, row: &[f32]) -> f32 {
        let binned = self.mapper.bin_row(row);
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.learning_rate * tree.predict_binned(&binned);
        }
        score
    }

    /// `P(label = 1)` for one row.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        sigmoid(self.decision_function(row))
    }

    /// Hard prediction with threshold 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Number of boosted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Mean training log-loss per round (monotone decrease is a health check).
    pub fn train_log_loss(&self) -> &[f64] {
        &self.train_log_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_threshold_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(0.0..1.0);
            let y: f32 = rng.gen_range(0.0..1.0);
            rows.push(vec![x, y]);
            labels.push(x + 0.1 * y > 0.55);
        }
        (rows, labels)
    }

    #[test]
    fn learns_threshold_rule() {
        let (rows, labels) = noisy_threshold_data(400, 3);
        let model = GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default());
        let (test_rows, test_labels) = noisy_threshold_data(100, 77);
        let correct = test_rows
            .iter()
            .zip(&test_labels)
            .filter(|(r, &l)| model.predict(r) == l)
            .count();
        assert!(correct >= 95, "accuracy {}/100", correct);
    }

    #[test]
    fn log_loss_decreases() {
        let (rows, labels) = noisy_threshold_data(200, 5);
        let model = GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default());
        let ll = model.train_log_loss();
        assert!(
            ll.last().unwrap() < &(ll[0] * 0.5),
            "{:?}",
            (ll[0], ll.last())
        );
    }

    #[test]
    fn learns_nonlinear_xor() {
        // Noisy XOR of two half-planes: requires depth >= 2 interactions
        // (empirical sampling noise breaks the exact gain symmetry, as in
        // any real dataset).
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..600 {
            let x: f32 = rng.gen_range(0.0..1.0);
            let y: f32 = rng.gen_range(0.0..1.0);
            rows.push(vec![x, y]);
            labels.push((x > 0.5) ^ (y > 0.5));
        }
        let model = GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default());
        assert!(model.predict(&[0.9, 0.1]));
        assert!(model.predict(&[0.1, 0.9]));
        assert!(!model.predict(&[0.1, 0.1]));
        assert!(!model.predict(&[0.9, 0.9]));
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels = vec![true; 20];
        let model = GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default());
        assert!(model.predict(&[5.0]));
        assert!(model.predict_proba(&[5.0]) > 0.9);
    }

    #[test]
    fn edge_shapes_fit_and_predict_consistently() {
        // Degenerate datasets the splitter must survive: a single row, a
        // single feature, constant columns, and all-one-class labels —
        // shapes that show up when a faulted trace leaves almost no samples.
        let shapes = testkit::gen::zip3(
            testkit::gen::usize_in(1, 40), // rows
            testkit::gen::usize_in(1, 5),  // feature width
            testkit::gen::usize_in(0, 2),  // label rule: 0 = all false, 1 = all true, 2 = threshold
        );
        testkit::check("gbdt_edge_shapes", &shapes, |&(n, width, rule)| {
            let mut rng = StdRng::seed_from_u64(((n * 64 + width) * 4 + rule) as u64);
            let rows: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..width).map(|_| rng.gen_range(0.0..1.0f32)).collect())
                .collect();
            let labels: Vec<bool> = rows
                .iter()
                .map(|r| match rule {
                    0 => false,
                    1 => true,
                    _ => r[0] > 0.5,
                })
                .collect();
            let model = crate::par::with_threads(1, || {
                GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default())
            });
            let other = crate::par::with_threads(4, || {
                GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default())
            });
            for r in &rows {
                let p = model.predict_proba(r);
                testkit::prop::holds(
                    p.is_finite() && (0.0..=1.0).contains(&p),
                    "proba out of range",
                )?;
                testkit::prop::holds(
                    model.decision_function(r) == other.decision_function(r),
                    "fit is not thread-count invariant on edge shapes",
                )?;
            }
            Ok(())
        });
    }

    #[test]
    fn arena_inference_matches_pointer_walk_reference() {
        // Property: the SoA arena logit is bitwise identical to the enum
        // pointer walk across dataset shapes, bin budgets, and round counts.
        let shapes = testkit::gen::zip3(
            testkit::gen::usize_in(2, 120), // rows
            testkit::gen::usize_in(1, 4),   // feature width
            testkit::gen::usize_in(1, 30),  // boosting rounds
        );
        testkit::check("gbdt_arena_vs_reference", &shapes, |&(n, width, rounds)| {
            let mut rng = StdRng::seed_from_u64(((n * 8 + width) * 64 + rounds) as u64);
            let rows: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..width).map(|_| rng.gen_range(0.0..1.0f32)).collect())
                .collect();
            let labels: Vec<bool> = rows
                .iter()
                .map(|r| r[0] + 0.07 * r[width - 1] > 0.5)
                .collect();
            let cfg = GbdtConfig {
                rounds,
                max_bins: 8 + rounds,
                ..GbdtConfig::default()
            };
            let model = GbdtBinaryClassifier::fit(&rows, &labels, &cfg);
            for r in &rows {
                testkit::prop::holds(
                    model.decision_function(r).to_bits()
                        == model.decision_function_reference(r).to_bits(),
                    "arena logit diverged from pointer-walk reference",
                )?;
            }
            Ok(())
        });
    }

    #[test]
    fn training_is_thread_count_invariant() {
        let (rows, labels) = noisy_threshold_data(300, 9);
        let fit_with = |threads: usize| {
            crate::par::with_threads(threads, || {
                GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default())
            })
        };
        let one = fit_with(1);
        let eight = fit_with(8);
        assert_eq!(one.train_log_loss(), eight.train_log_loss());
        for r in &rows {
            assert_eq!(one.decision_function(r), eight.decision_function(r));
        }
    }

    #[test]
    fn tree_count_matches_rounds() {
        let (rows, labels) = noisy_threshold_data(50, 1);
        let cfg = GbdtConfig {
            rounds: 7,
            ..GbdtConfig::default()
        };
        let model = GbdtBinaryClassifier::fit(&rows, &labels, &cfg);
        assert_eq!(model.tree_count(), 7);
    }
}
