//! Post-training int8 quantization and the quantized serving path.
//!
//! [`QuantizedSequenceClassifier::from_f32`] converts a trained
//! [`SequenceClassifier`] into an int8 twin: weights are quantized
//! symmetrically with a **per-row** absmax scale (each gate/logit row keeps
//! its own dynamic range), activations with a **per-tensor** absmax scale
//! computed on the fly at inference. Dot products accumulate in `i32` —
//! exact, so accumulation order is irrelevant and the AVX2 path in
//! [`crate::simd::dot_i8`] needs no bit-pinning argument — and dequantize
//! with one `f32` multiply per output.
//!
//! The pass is *pinned and seeded* in the repo's sense: it is a pure
//! function of the f32 weights (no RNG, no calibration data, no
//! environment), every inner loop is serial, and `f32::round` /
//! `clamp` are deterministic — so the same trained model produces
//! bitwise-identical int8 weights and labels at any worker count
//! (`tests/determinism.rs` pins this).
//!
//! Unlike the f32 fast paths, the int8 path is **not** bitwise-equal to the
//! f32 reference — quantization is lossy by design. Its contract is label
//! agreement: ≥ 99% of argmax labels must match the f32 classifier on
//! attack-shaped workloads, measured by `serving_bench` and pinned in the
//! golden quantization report. That headroom is also why the LSTM gates use
//! fast rational `tanh`/`sigmoid` approximations instead of libm: the
//! transcendentals dominate the f32 serving cost, and a deterministic
//! polynomial with ~2e-2 worst-case error is invisible next to the int8
//! rounding noise while buying most of the ≥4× throughput target.

use std::collections::BTreeMap;

use crate::activation::{argmax, softmax};
use crate::dense::Dense;
use crate::lstm::LstmLayer;
use crate::matrix::Matrix;
use crate::seq::SequenceClassifier;
use crate::simd::{dot_i8, dot_i8_x4, matvec_i8};

/// Symmetric quantization range: `[-127, 127]`. `-128` is excluded so the
/// range is symmetric and `i8 x i8` products can never overflow the
/// `i16`-pair accumulation used by the AVX2 kernel.
const Q_MAX: f32 = 127.0;

/// Quantizes one value given the reciprocal scale (round-half-away-from-zero,
/// then clamp — both deterministic f32 ops).
fn quantize_value(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round().clamp(-Q_MAX, Q_MAX) as i8
}

/// Per-tensor symmetric quantization of an activation slice into `dst`
/// (reusing its allocation), returning the scale. An all-zero tensor gets
/// scale 1.0 — any scale represents zeros exactly, and 1.0 avoids a
/// divide-by-zero without a special case downstream.
fn quantize_tensor(src: &[f32], dst: &mut Vec<i8>) -> f32 {
    let absmax = src.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    let scale = if absmax == 0.0 { 1.0 } else { absmax / Q_MAX };
    let inv = 1.0 / scale;
    dst.clear();
    dst.extend(src.iter().map(|&v| quantize_value(v, inv)));
    scale
}

/// Clamped rational (Padé 3/2) `tanh` approximation:
/// `x (27 + x^2) / (27 + 9 x^2)` on `[-3, 3]`, saturating to exactly ±1 at
/// the clamp boundary. Worst-case error ≈ 2e-2 — far below the int8
/// quantization noise floor. Pure deterministic f32 arithmetic.
fn fast_tanh(x: f32) -> f32 {
    let x = x.clamp(-3.0, 3.0);
    let x2 = x * x;
    x * (27.0 + x2) / (27.0 + 9.0 * x2)
}

/// Sigmoid via the tanh identity: `0.5 (1 + tanh(x/2))`.
fn fast_sigmoid(x: f32) -> f32 {
    0.5 * (1.0 + fast_tanh(0.5 * x))
}

/// A row-major `i8` matrix with one symmetric absmax scale per row.
///
/// Row `r` reconstructs as `data[r][c] as f32 * scales[r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes an f32 weight matrix row by row. A zero row gets scale 1.0
    /// (same per-tensor max-abs scheme as `quantize_tensor`).
    pub fn from_f32(m: &Matrix) -> Self {
        let mut data = Vec::with_capacity(m.len());
        let mut scales = Vec::with_capacity(m.rows());
        for r in 0..m.rows() {
            let row = m.row(r);
            let absmax = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax / Q_MAX };
            let inv = 1.0 / scale;
            data.extend(row.iter().map(|&v| quantize_value(v, inv)));
            scales.push(scale);
        }
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one quantized row.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The absmax scale of row `r`.
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }
}

/// Int8 twin of an [`LstmLayer`]: quantized gate weights, f32 biases and
/// f32 cell/hidden state (the state is requantized per timestep for the
/// recurrent product).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLstmLayer {
    input_size: usize,
    hidden_size: usize,
    /// Input gate weights, 4H x I.
    wx: QuantizedMatrix,
    /// Recurrent gate weights, 4H x H.
    wh: QuantizedMatrix,
    /// Gate biases (kept in f32 — they are added after dequantization).
    b: Vec<f32>,
}

impl QuantizedLstmLayer {
    /// Quantizes a trained layer's weights.
    pub fn from_f32(layer: &LstmLayer) -> Self {
        QuantizedLstmLayer {
            input_size: layer.input_size(),
            hidden_size: layer.hidden_size(),
            wx: QuantizedMatrix::from_f32(&layer.wx),
            wh: QuantizedMatrix::from_f32(&layer.wh),
            b: layer.b.clone(),
        }
    }

    /// Runs the layer over a batch-major packed input (`rows = T x B`,
    /// row `t * b_n + bi` holds sequence `bi`'s timestep `t`), returning the
    /// packed hidden states (T x B rows, H columns).
    ///
    /// The input projection quantizes the whole packed tensor once and runs
    /// every `(row, gate)` dot in int8; the recurrence requantizes the B x H
    /// hidden state per timestep (activations are per-tensor by scheme).
    /// All loops are serial — worker count cannot influence the result.
    fn forward_batch(&self, input: &Matrix, b_n: usize) -> Matrix {
        assert_eq!(input.cols(), self.input_size, "lstm input width mismatch");
        let rows = input.rows();
        let t_len = rows / b_n;
        let h_size = self.hidden_size;
        let gates = 4 * h_size;

        // `gates = 4 * h_size`, so the gate loops below always cover whole
        // blocks of four rows for the fused kernel — no remainder.
        let use_simd = crate::simd::enabled();

        // Fused input projection in int8: one per-tensor scale for all rows.
        // Feature widths below one SIMD chunk would spend more time on
        // kernel-call overhead than arithmetic, so they take a plain nested
        // loop (identical exact i32 accumulation either way).
        let mut xq: Vec<i8> = Vec::new();
        let x_scale = quantize_tensor(input.as_slice(), &mut xq);
        let mut x_proj = Matrix::zeros(rows, gates);
        let mut proj_i32 = vec![0i32; gates];
        for r in 0..rows {
            let x_row = &xq[r * self.input_size..(r + 1) * self.input_size];
            let out_row = x_proj.row_mut(r);
            if self.input_size < 16 {
                for (j, slot) in out_row.iter_mut().enumerate() {
                    let acc: i32 = self
                        .wx
                        .row(j)
                        .iter()
                        .zip(x_row)
                        .map(|(&w, &x)| w as i32 * x as i32)
                        .sum();
                    *slot = acc as f32 * (x_scale * self.wx.scale(j));
                }
            } else {
                matvec_i8(
                    &self.wx.data,
                    self.input_size,
                    x_row,
                    &mut proj_i32,
                    use_simd,
                );
                for (j, (slot, &d)) in out_row.iter_mut().zip(proj_i32.iter()).enumerate() {
                    *slot = d as f32 * (x_scale * self.wx.scale(j));
                }
            }
        }

        let mut out_h = Matrix::zeros(rows, h_size);
        let mut h_prev = vec![0.0f32; b_n * h_size];
        let mut c_prev = vec![0.0f32; b_n * h_size];
        let mut hq: Vec<i8> = Vec::new();
        let mut pre = vec![0.0f32; gates];
        let mut wh_scaled = vec![0.0f32; gates];
        for t in 0..t_len {
            let h_scale = quantize_tensor(&h_prev, &mut hq);
            // Hoist the per-gate dequantization factor out of the `bi` loop.
            for (j, s) in wh_scaled.iter_mut().enumerate() {
                *s = h_scale * self.wh.scale(j);
            }
            for bi in 0..b_n {
                let r = t * b_n + bi;
                let h_row = &hq[bi * h_size..(bi + 1) * h_size];
                let x_row = x_proj.row(r);
                matvec_i8(&self.wh.data, h_size, h_row, &mut proj_i32, use_simd);
                for ((((p, &d), &x), &s), &bias) in pre
                    .iter_mut()
                    .zip(proj_i32.iter())
                    .zip(x_row)
                    .zip(wh_scaled.iter())
                    .zip(self.b.iter())
                {
                    *p = x + d as f32 * s + bias;
                }
                // Split the preactivations into per-gate slices so the loop
                // below is pure elementwise iterator arithmetic: no bounds
                // checks, which lets the compiler vectorize it — including
                // the rational gates' divisions (`vdivps` is exact IEEE
                // division, so this changes nothing about determinism).
                let (i_pre, rest) = pre.split_at(h_size);
                let (f_pre, rest) = rest.split_at(h_size);
                let (g_pre, o_pre) = rest.split_at(h_size);
                let c_row = &mut c_prev[bi * h_size..(bi + 1) * h_size];
                let out_row = out_h.row_mut(r);
                for (((((slot, c), &ip), &fp), &gp), &op) in out_row
                    .iter_mut()
                    .zip(c_row.iter_mut())
                    .zip(i_pre)
                    .zip(f_pre)
                    .zip(g_pre)
                    .zip(o_pre)
                {
                    let i = fast_sigmoid(ip);
                    let f = fast_sigmoid(fp);
                    let g = fast_tanh(gp);
                    let o = fast_sigmoid(op);
                    let new_c = f * *c + i * g;
                    *c = new_c;
                    *slot = o * fast_tanh(new_c);
                }
            }
            for bi in 0..b_n {
                let r = t * b_n + bi;
                h_prev[bi * h_size..(bi + 1) * h_size].copy_from_slice(out_h.row(r));
            }
        }
        out_h
    }
}

/// Int8 twin of a [`Dense`] head: per-row absmax weights, f32 bias.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDense {
    /// Weights, O x I.
    w: QuantizedMatrix,
    /// Bias, length O.
    b: Vec<f32>,
}

impl QuantizedDense {
    /// Quantizes a trained head's weights.
    pub fn from_f32(head: &Dense) -> Self {
        QuantizedDense {
            w: QuantizedMatrix::from_f32(&head.w),
            b: head.b.clone(),
        }
    }

    /// Applies the head to every row of `xs`, quantizing the whole input
    /// tensor once (per-tensor activation scale). Output rows go through the
    /// fused 4-dot kernel in whole blocks; the remainder (class counts not
    /// divisible by four) falls back to single dots.
    fn forward(&self, xs: &Matrix) -> Matrix {
        assert_eq!(xs.cols(), self.w.cols(), "dense input width mismatch");
        let use_simd = crate::simd::enabled();
        let mut xq: Vec<i8> = Vec::new();
        let x_scale = quantize_tensor(xs.as_slice(), &mut xq);
        let cols = self.w.cols();
        let outputs = self.w.rows();
        let blocks = outputs / 4 * 4;
        let mut out = Matrix::zeros(xs.rows(), outputs);
        for t in 0..xs.rows() {
            let x_row = &xq[t * cols..(t + 1) * cols];
            let out_row = out.row_mut(t);
            for ob in (0..blocks).step_by(4) {
                let w4 = [
                    self.w.row(ob),
                    self.w.row(ob + 1),
                    self.w.row(ob + 2),
                    self.w.row(ob + 3),
                ];
                let dots = dot_i8_x4(&w4, x_row, use_simd);
                for (t4, &d) in dots.iter().enumerate() {
                    let o = ob + t4;
                    out_row[o] = d as f32 * (x_scale * self.w.scale(o)) + self.b[o];
                }
            }
            for (o, slot) in out_row.iter_mut().enumerate().skip(blocks) {
                *slot =
                    dot_i8(self.w.row(o), x_row) as f32 * (x_scale * self.w.scale(o)) + self.b[o];
            }
        }
        out
    }
}

/// An int8 serving twin of a trained [`SequenceClassifier`].
///
/// Mirrors the f32 batch-bucketed inference API
/// ([`SequenceClassifier::predict_proba_batch`] /
/// [`SequenceClassifier::predict_batch`]): sequences are bucketed by exact
/// length in a `BTreeMap` and each bucket runs one packed batch-major
/// forward. Training always stays in f32 — this type is produced *after*
/// training by [`QuantizedSequenceClassifier::from_f32`] and is inference
/// only.
///
/// # Examples
///
/// ```
/// use ml::seq::{SeqClassifierConfig, SequenceClassifier};
/// use ml::data::SeqExample;
/// use ml::quant::QuantizedSequenceClassifier;
///
/// let mut cfg = SeqClassifierConfig::new(2, 8, 2);
/// cfg.epochs = 30;
/// let data: Vec<SeqExample> = (0..8)
///     .map(|i| {
///         let lab = i % 2;
///         let mut f = vec![0.0, 0.0];
///         f[lab] = 1.0;
///         SeqExample::new(vec![f; 5], vec![lab; 5])
///     })
///     .collect();
/// let mut clf = SequenceClassifier::new(cfg);
/// clf.fit(&data);
/// let q = QuantizedSequenceClassifier::from_f32(&clf);
/// assert_eq!(q.predict(&data[0].features), clf.predict(&data[0].features));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSequenceClassifier {
    input_size: usize,
    layers: Vec<QuantizedLstmLayer>,
    head: QuantizedDense,
}

impl QuantizedSequenceClassifier {
    /// Post-training quantization: a pure, deterministic function of the
    /// trained f32 weights (see the module docs).
    pub fn from_f32(clf: &SequenceClassifier) -> Self {
        QuantizedSequenceClassifier {
            input_size: clf.config().input_size,
            layers: clf
                .layers()
                .iter()
                .map(QuantizedLstmLayer::from_f32)
                .collect(),
            head: QuantizedDense::from_f32(clf.head()),
        }
    }

    /// Feature width this classifier expects per timestep.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Buckets sequences by exact length, runs the packed int8 forward per
    /// bucket and hands the packed logits to `sink` as
    /// `(sequence index, bucket slot, timesteps, bucket width, logits)`.
    fn for_each_bucket(
        &self,
        seqs: &[&[Vec<f32>]],
        mut sink: impl FnMut(usize, usize, usize, usize, &Matrix),
    ) {
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, seq) in seqs.iter().enumerate() {
            if seq.is_empty() {
                continue;
            }
            assert_eq!(seq[0].len(), self.input_size, "feature width mismatch");
            buckets.entry(seq.len()).or_default().push(i);
        }
        let mut xs = Matrix::zeros(1, 1);
        for (&t_len, idxs) in &buckets {
            let b_n = idxs.len();
            xs.resize_zeroed(t_len * b_n, self.input_size);
            for (bi, &i) in idxs.iter().enumerate() {
                for (t, row) in seqs[i].iter().enumerate() {
                    xs.set_row(t * b_n + bi, row);
                }
            }
            let mut cur = self.layers[0].forward_batch(&xs, b_n);
            for layer in &self.layers[1..] {
                cur = layer.forward_batch(&cur, b_n);
            }
            let logits = self.head.forward(&cur);
            for (bi, &i) in idxs.iter().enumerate() {
                sink(i, bi, t_len, b_n, &logits);
            }
        }
    }

    /// Predicts per-timestep class probabilities for many sequences at once
    /// through the int8 path. Same bucketing and result order as
    /// [`SequenceClassifier::predict_proba_batch`]; empty sequences yield
    /// empty predictions.
    pub fn predict_proba_batch(&self, seqs: &[&[Vec<f32>]]) -> Vec<Vec<Vec<f32>>> {
        let mut results: Vec<Vec<Vec<f32>>> = vec![Vec::new(); seqs.len()];
        self.for_each_bucket(seqs, |i, bi, t_len, b_n, logits| {
            results[i] = (0..t_len)
                .map(|t| softmax(logits.row(t * b_n + bi)))
                .collect();
        });
        results
    }

    /// Predicts per-timestep class labels for many sequences at once —
    /// straight argmax over the logits (softmax is monotonic, so the labels
    /// equal `predict_proba_batch` + argmax without the per-timestep
    /// probability allocations the serving fleet never reads).
    pub fn predict_batch(&self, seqs: &[&[Vec<f32>]]) -> Vec<Vec<usize>> {
        let mut results: Vec<Vec<usize>> = vec![Vec::new(); seqs.len()];
        self.for_each_bucket(seqs, |i, bi, t_len, b_n, logits| {
            results[i] = (0..t_len)
                .map(|t| argmax(logits.row(t * b_n + bi)))
                .collect();
        });
        results
    }

    /// Predicts per-timestep class probabilities for one sequence.
    pub fn predict_proba(&self, features: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.predict_proba_batch(&[features])
            .pop()
            .expect("one result per input sequence")
    }

    /// Predicts per-timestep class labels for one sequence (same logit
    /// argmax as [`QuantizedSequenceClassifier::predict_batch`]).
    pub fn predict(&self, features: &[Vec<f32>]) -> Vec<usize> {
        self.predict_batch(&[features])
            .pop()
            .expect("one result per input sequence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SeqExample;
    use crate::seq::SeqClassifierConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quadrant_dataset(n: usize, t: usize, seed: u64) -> Vec<SeqExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut features = Vec::with_capacity(t);
                let mut labels = Vec::with_capacity(t);
                for _ in 0..t {
                    let lab = rng.gen_range(0..4usize);
                    let (sx, sy) = match lab {
                        0 => (1.0, 1.0),
                        1 => (-1.0, 1.0),
                        2 => (-1.0, -1.0),
                        _ => (1.0, -1.0),
                    };
                    features.push(vec![
                        sx + rng.gen_range(-0.2f32..0.2),
                        sy + rng.gen_range(-0.2f32..0.2),
                    ]);
                    labels.push(lab);
                }
                SeqExample::new(features, labels)
            })
            .collect()
    }

    fn trained_classifier() -> SequenceClassifier {
        let mut cfg = SeqClassifierConfig::new(2, 12, 4);
        cfg.epochs = 25;
        cfg.seed = 11;
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&quadrant_dataset(16, 8, 3));
        clf
    }

    #[test]
    fn per_row_scales_reconstruct_absmax_exactly_in_magnitude() {
        let m = Matrix::from_rows(&[&[0.5, -2.0, 1.0], &[0.0, 0.0, 0.0], &[3.0, 0.1, -0.2]]);
        let q = QuantizedMatrix::from_f32(&m);
        // The absmax element of every non-zero row quantizes to ±127.
        assert_eq!(q.row(0), &[32, -127, 64]);
        assert_eq!(q.scale(0), 2.0 / 127.0);
        // Zero rows: scale 1.0, all-zero codes.
        assert_eq!(q.row(1), &[0, 0, 0]);
        assert_eq!(q.scale(1), 1.0);
        assert_eq!(q.row(2)[0], 127);
    }

    #[test]
    fn tensor_quantization_roundtrip_error_is_bounded_by_half_step() {
        let src: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.073).collect();
        let mut dst = Vec::new();
        let scale = quantize_tensor(&src, &mut dst);
        for (&v, &q) in src.iter().zip(dst.iter()) {
            let back = q as f32 * scale;
            assert!(
                (v - back).abs() <= scale * 0.5 + 1e-6,
                "{v} -> {q} -> {back} (scale {scale})"
            );
        }
    }

    #[test]
    fn fast_gates_approximate_libm_within_tolerance() {
        for i in -60..=60 {
            let x = i as f32 * 0.1;
            assert!(
                (fast_tanh(x) - x.tanh()).abs() < 0.025,
                "tanh({x}): {} vs {}",
                fast_tanh(x),
                x.tanh()
            );
            assert!(
                (fast_sigmoid(x) - crate::activation::sigmoid(x)).abs() < 0.015,
                "sigmoid({x})"
            );
        }
        // Exact saturation at the clamp boundary and beyond.
        assert_eq!(fast_tanh(3.0), 1.0);
        assert_eq!(fast_tanh(-50.0), -1.0);
    }

    #[test]
    fn quantization_is_a_pure_function_of_the_model() {
        let clf = trained_classifier();
        let a = QuantizedSequenceClassifier::from_f32(&clf);
        let b = QuantizedSequenceClassifier::from_f32(&clf);
        assert_eq!(a, b, "two passes over the same weights must be identical");
    }

    #[test]
    fn labels_agree_with_f32_on_a_confident_model() {
        let clf = trained_classifier();
        let q = QuantizedSequenceClassifier::from_f32(&clf);
        let test = quadrant_dataset(12, 8, 777);
        let seqs: Vec<&[Vec<f32>]> = test.iter().map(|ex| ex.features.as_slice()).collect();
        let f32_labels = clf.predict_batch(&seqs);
        let q_labels = q.predict_batch(&seqs);
        let total: usize = f32_labels.iter().map(Vec::len).sum();
        let agree: usize = f32_labels
            .iter()
            .zip(q_labels.iter())
            .map(|(a, b)| a.iter().zip(b.iter()).filter(|(x, y)| x == y).count())
            .sum();
        assert!(
            agree as f64 / total as f64 >= 0.99,
            "int8 label agreement too low: {agree}/{total}"
        );
    }

    #[test]
    fn batched_and_single_sequence_paths_agree_bitwise() {
        // Bucket composition must not change any sequence's int8 values:
        // the packed input tensor per bucket contains exactly the same rows,
        // and the per-tensor scale only depends on that bucket's sequences…
        // so *within one bucket layout* results are deterministic. Single
        // sequences go through a singleton bucket both ways.
        let clf = trained_classifier();
        let q = QuantizedSequenceClassifier::from_f32(&clf);
        let test = quadrant_dataset(5, 6, 31);
        for ex in &test {
            let solo = q.predict_proba(&ex.features);
            let via_batch = q
                .predict_proba_batch(&[ex.features.as_slice()])
                .pop()
                .unwrap();
            assert_eq!(solo, via_batch);
            assert_eq!(
                q.predict(&ex.features),
                solo.iter().map(|p| argmax(p)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_and_mixed_length_sequences_are_handled() {
        let clf = trained_classifier();
        let q = QuantizedSequenceClassifier::from_f32(&clf);
        let long = quadrant_dataset(1, 7, 9)[0].features.clone();
        let short = quadrant_dataset(1, 2, 10)[0].features.clone();
        let empty: Vec<Vec<f32>> = Vec::new();
        let out = q.predict_proba_batch(&[long.as_slice(), empty.as_slice(), short.as_slice()]);
        assert_eq!(out[0].len(), 7);
        assert!(out[1].is_empty());
        assert_eq!(out[2].len(), 2);
        for probs in out[0].iter().chain(out[2].iter()) {
            let sum: f32 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "probabilities must sum to 1");
        }
    }

    #[test]
    fn simd_dispatch_does_not_change_int8_results() {
        // i32 accumulation is exact, so the AVX2 and scalar dot products are
        // equal by construction — pin it end to end anyway.
        let clf = trained_classifier();
        let q = QuantizedSequenceClassifier::from_f32(&clf);
        let test = quadrant_dataset(4, 5, 55);
        let seqs: Vec<&[Vec<f32>]> = test.iter().map(|ex| ex.features.as_slice()).collect();
        let on = crate::simd::with_simd(true, || q.predict_proba_batch(&seqs));
        let off = crate::simd::with_simd(false, || q.predict_proba_batch(&seqs));
        assert_eq!(on, off);
    }
}
