//! # `ml` — from-scratch machine-learning substrate for `leaky-dnn`
//!
//! The MoSConS attack (Leaky DNN, DSN 2020) trains six inference models:
//! a LightGBM gap detector (`Mgap`) and five LSTM models
//! (`Mlong`/`Mop`/`Mhp`/`Vlong`/`Vop`, paper Table III). This crate provides
//! everything those models need, implemented from scratch:
//!
//! * [`matrix`] — dense row-major `f32` matrices;
//! * [`lstm`] — an LSTM layer with full backpropagation-through-time;
//! * [`dense`] — a per-timestep fully-connected head;
//! * [`loss`] — weighted and maskable softmax cross-entropy (the paper's two
//!   loss customizations);
//! * [`seq`] — the assembled per-timestep [`seq::SequenceClassifier`];
//! * [`tree`] / [`gbdt`] — histogram gradient-boosted trees (the LightGBM
//!   stand-in);
//! * [`optim`] — SGD / Adam / Adagrad and gradient clipping;
//! * [`par`] — persistent deterministic worker pool used by the
//!   data-parallel training and inference paths;
//! * [`simd`] — explicit-lane AVX2 kernels behind runtime dispatch, bitwise
//!   pinned to the scalar microkernel (the only `core::arch` user, lint D8);
//! * [`quant`] — post-training int8 quantization and the
//!   [`quant::QuantizedSequenceClassifier`] serving path;
//! * [`workspace`] — pooled, reusable training buffers behind the
//!   allocation-free epoch loop;
//! * [`scale`] — MinMax scaling (§IV-A pre-processing);
//! * [`metrics`] — accuracy, confusion matrices, `mean(σ)` summaries;
//! * [`data`] — sequence datasets, one-hot encoding, splits.
//!
//! # Examples
//!
//! ```
//! use ml::gbdt::{GbdtBinaryClassifier, GbdtConfig};
//!
//! let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
//! let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
//! let model = GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default());
//! assert!(model.predict(&[33.0]));
//! ```

pub mod activation;
pub mod data;
pub mod dense;
pub mod gbdt;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod metrics;
pub mod optim;
pub mod par;
pub mod quant;
pub mod scale;
pub mod seq;
pub mod simd;
pub mod tree;
pub mod workspace;

pub use data::SeqExample;
pub use gbdt::{GbdtBinaryClassifier, GbdtConfig};
pub use matrix::Matrix;
pub use metrics::{accuracy, ConfusionMatrix, MeanStd};
pub use quant::QuantizedSequenceClassifier;
pub use scale::MinMaxScaler;
pub use seq::{SeqClassifierConfig, SequenceClassifier, StreamState};
