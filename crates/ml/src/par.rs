//! Deterministic data-parallel execution primitives.
//!
//! Dispatch runs on a lazily-initialized persistent worker pool
//! ([`pool`]) by default — workers spawn once and park on a condvar, so a
//! call costs an enqueue + wake instead of fresh `std::thread::scope`
//! spawns. The legacy scoped-spawn path is kept behind `LEAKY_DNN_POOL=off`
//! (or [`with_pool`]) for differential testing; both backends are bitwise
//! identical. The core guarantee is that results are **thread-count
//! invariant**: [`par_map`] returns results in input order regardless of
//! how work was distributed, so any caller that combines them in that order
//! is bitwise reproducible across `1..=N` threads. Callers that need
//! associativity-sensitive reductions (e.g. floating-point sums) must
//! therefore fold the returned `Vec` serially. All `unsafe` in the
//! workspace's parallel machinery lives in [`pool`] (leaky-lint rule D5
//! enforces the confinement).
//!
//! The worker count is resolved per call by [`threads`]:
//!
//! 1. a process-local override installed by [`set_threads`] / [`with_threads`];
//! 2. the `LEAKY_DNN_THREADS` environment variable, capped at
//!    [`std::thread::available_parallelism`] — every workload here is
//!    CPU-bound and bitwise thread-count invariant, so workers beyond the
//!    core count can only add context-switch and cache-thrash overhead,
//!    never speed;
//! 3. [`std::thread::available_parallelism`].
//!
//! The explicit overrides are *not* capped: tests use them to force the
//! parallel code paths on single-core machines, which the invariance
//! guarantee makes safe.
//!
//! # Examples
//!
//! ```
//! let squares = ml::par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod pool;
pub mod thresholds;

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread scope override installed by [`with_threads`]; 0 = unset.
    /// Thread-local (rather than process-wide) so concurrent callers — e.g.
    /// parallel test threads — cannot observe each other's scopes, and so
    /// nesting needs no reentrant lock.
    static SCOPE_OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Set on pool worker threads so nested [`par_map`] calls run serially
    /// instead of oversubscribing the machine.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolves the worker count for subsequent parallel calls on this thread:
/// [`with_threads`] scope, then [`set_threads`], then the
/// `LEAKY_DNN_THREADS` environment variable (capped at the detected
/// hardware parallelism, see the module docs), then
/// [`std::thread::available_parallelism`]. On a pool worker thread this is
/// always 1 (nested parallelism is serialized).
pub fn threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    let scoped = SCOPE_OVERRIDE.with(Cell::get);
    if scoped > 0 {
        return scoped;
    }
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("LEAKY_DNN_THREADS") {
        Ok(v) => resolve_env_threads(&v, hw).unwrap_or(hw),
        Err(_) => hw,
    }
}

/// Parses a `LEAKY_DNN_THREADS` value against the detected hardware
/// parallelism `hw`. Returns `None` for unparseable or zero values (callers
/// fall back to `hw`); positive values are capped at `hw` — the env var
/// tunes real machines, so oversubscription is never useful there, unlike
/// the uncapped [`set_threads`] / [`with_threads`] overrides tests use to
/// force multi-worker paths on small boxes (see the module docs).
fn resolve_env_threads(val: &str, hw: usize) -> Option<usize> {
    match val.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n.min(hw)),
        _ => None,
    }
}

/// Installs a process-wide thread-count override (0 clears it, falling back
/// to `LEAKY_DNN_THREADS` / detected parallelism).
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs `f` with this thread's worker count pinned to `n`, restoring the
/// previous scope afterwards (also on panic). Nests freely.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SCOPE_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Runs `f` with the dispatch backend pinned to the persistent pool
/// (`true`) or the legacy scoped-spawn fallback (`false`), restoring the
/// previous override afterwards (also on panic).
///
/// Process-wide rather than thread-local, like [`crate::simd::with_simd`]:
/// pool workers do not inherit the caller's thread-locals, and since both
/// backends are bitwise identical a concurrent caller observing the other
/// backend is a scheduling detail, never an arithmetic one.
pub fn with_pool<R>(enable: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            pool::set_override(self.0);
        }
    }
    let _restore = Restore(pool::set_override(if enable { 2 } else { 1 }));
    f()
}

/// Marks the calling thread as a resident pool worker for the rest of its
/// life: nested parallel calls run serially ([`threads`] reports 1) instead
/// of oversubscribing the machine.
fn enter_worker_context() {
    IN_POOL.with(|c| c.set(true));
}

/// Marks the calling thread as executing pool chunks for the duration of
/// the returned guard (the dispatcher helping drain its own job): nested
/// parallel calls serialize exactly as they do on resident workers.
fn enter_pool_scope() -> impl Drop {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL.with(|c| c.set(self.0));
        }
    }
    Restore(IN_POOL.with(|c| c.replace(true)))
}

/// Maps `f` over `items` on up to [`threads`] workers, returning results in
/// input order.
///
/// On the default pool backend the items are divided into a static chunk
/// partition (a pure function of worker count and item count) whose chunks
/// are claimed dynamically in index order and write into pre-assigned
/// output slots; the scoped fallback distributes single items by an atomic
/// counter and sorts by input index. Either way the result is identical for
/// any worker count. A panic inside `f` propagates to the caller once the
/// whole dispatch has drained.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    if pool::enabled() {
        return pool::par_map_pooled(items, &f, workers);
    }
    par_map_scoped(items, f, workers)
}

/// Scoped-spawn fallback backend of [`par_map`] (`LEAKY_DNN_POOL=off`),
/// kept for differential testing against the pool.
fn par_map_scoped<T, R, F>(items: &[T], f: F, workers: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    local.push((idx, f(idx, &items[idx])));
                }
                // Poisoning only happens if another worker panicked while
                // extending; our results are then discarded anyway because
                // the scope re-raises that panic.
                collected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });
    let mut merged = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    merged.sort_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`par_map`], but stays on the calling thread when `work` — any
/// caller-chosen unit: items, samples, rows — is below `min_work`.
///
/// Even a pool dispatch is not free (enqueue, wake, completion latch —
/// single-digit microseconds; the `pool` section of `BENCH_pipeline.json`
/// tracks it, and the retired scoped-spawn backend cost tens of
/// microseconds *per worker*, enough that the `attack_extract` stage once
/// measured a 0.81× "speedup"); for small inputs the fan-out is still pure
/// overhead. Results are bitwise identical on either path, so the gate is
/// purely a scheduling decision.
pub fn par_map_if_work<T, R, F>(work: usize, min_work: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if work < min_work {
        items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
    } else {
        par_map(items, f)
    }
}

/// Maps `f` over `items` **in place** on up to [`threads`] workers,
/// returning the per-item results in input order.
///
/// The mutable counterpart of [`par_map`] for element-wise state machines
/// (e.g. the fleet orchestrator advancing per-session simulations): the
/// slice is statically partitioned into disjoint contiguous chunks, so
/// every element is visited exactly once with exclusive access. As long as
/// `f` is a pure function of the element (no shared mutable state), results
/// and final element states are bitwise identical for any worker count.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    if pool::enabled() {
        return pool::par_map_mut_pooled(items, &f, workers);
    }
    par_map_mut_scoped(items, f, workers)
}

/// Scoped-spawn fallback backend of [`par_map_mut`] (`LEAKY_DNN_POOL=off`):
/// one contiguous chunk per worker via safe `chunks_mut`.
fn par_map_mut_scoped<T, R, F>(items: &mut [T], f: F, workers: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                s.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Runs two closures, concurrently when more than one worker is available,
/// and returns both results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        return (a(), b());
    }
    if pool::enabled() {
        return pool::join_pooled(a, b);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for n in [1usize, 2, 3, 8] {
            let out = with_threads(n, || par_map(&items, |i, &x| (i, x * 2)));
            for (i, &(idx, doubled)) in out.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(doubled, 2 * i);
            }
        }
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let one = with_threads(1, || par_map(&items, |_, &x| x.sin() * x.cos()));
        for n in [2usize, 4, 7, 16] {
            let many = with_threads(n, || par_map(&items, |_, &x| x.sin() * x.cos()));
            assert_eq!(one, many, "results differ at {} threads", n);
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn with_threads_restores_override_after_nesting() {
        let before = SCOPE_OVERRIDE.with(Cell::get);
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(5, || assert_eq!(threads(), 5));
            assert_eq!(threads(), 3);
        });
        assert_eq!(SCOPE_OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn with_threads_restores_override_on_panic() {
        let before = SCOPE_OVERRIDE.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_threads(9, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(SCOPE_OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn pool_workers_report_single_thread() {
        let flags = with_threads(4, || par_map(&[0u8; 8], |_, _| threads()));
        assert!(flags.iter().all(|&n| n == 1), "workers saw {:?}", flags);
    }

    #[test]
    fn par_map_if_work_agrees_on_both_paths() {
        let items: Vec<f32> = (0..64).map(|i| i as f32 * 0.31).collect();
        let serial = par_map_if_work(10, 1000, &items, |_, &x| x.sin() * 3.0);
        let parallel = with_threads(4, || {
            par_map_if_work(5000, 1000, &items, |_, &x| x.sin() * 3.0)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_mut_visits_every_element_once_in_order() {
        for n in [1usize, 2, 3, 8] {
            let mut items: Vec<usize> = (0..257).collect();
            let out = with_threads(n, || {
                par_map_mut(&mut items, |i, x| {
                    *x += 1;
                    (i, *x)
                })
            });
            assert_eq!(items, (1..258).collect::<Vec<_>>(), "at {} threads", n);
            for (i, &(idx, v)) in out.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(v, i + 1);
            }
        }
    }

    #[test]
    fn par_map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, x| *x).is_empty());
        let mut one = [41u32];
        assert_eq!(par_map_mut(&mut one, |_, x| *x + 1), vec![42]);
    }

    #[test]
    fn join_returns_both_results() {
        for n in [1usize, 4] {
            let (a, b) = with_threads(n, || join(|| 6 * 7, || "side".len()));
            assert_eq!(a, 42);
            assert_eq!(b, 4);
        }
    }

    #[test]
    fn nested_par_map_stays_correct() {
        let outer: Vec<usize> = (0..8).collect();
        let inner: Vec<usize> = (0..10).collect();
        let out = with_threads(4, || {
            par_map(&outer, |_, &i| {
                par_map(&inner, |_, &j| i * 10 + j).iter().sum::<usize>()
            })
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..10).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn env_thread_requests_are_capped_at_hardware_parallelism() {
        assert_eq!(resolve_env_threads("16", 4), Some(4));
        assert_eq!(resolve_env_threads("64", 1), Some(1));
    }

    #[test]
    fn env_thread_requests_below_the_cap_pass_through() {
        assert_eq!(resolve_env_threads("2", 8), Some(2));
        assert_eq!(resolve_env_threads(" 3 ", 4), Some(3));
        assert_eq!(resolve_env_threads("8", 8), Some(8));
    }

    #[test]
    fn zero_or_garbage_env_threads_fall_back() {
        assert_eq!(resolve_env_threads("0", 4), None);
        assert_eq!(resolve_env_threads("", 4), None);
        assert_eq!(resolve_env_threads("lots", 4), None);
        assert_eq!(resolve_env_threads("-2", 4), None);
        assert_eq!(resolve_env_threads("3.5", 4), None);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |i, _| {
                    if i == 17 {
                        panic!("worker 17 failed");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_and_scoped_backends_agree_bitwise() {
        let items: Vec<f32> = (0..321).map(|i| i as f32 * 0.41).collect();
        let run = || {
            with_threads(4, || {
                let mapped = par_map(&items, |i, &x| x.sin().mul_add(x.cos(), i as f32));
                let mut state: Vec<f32> = items.clone();
                let mutated = par_map_mut(&mut state, |_, x| {
                    *x = x.exp_m1();
                    *x
                });
                let (a, b) = join(|| items.iter().sum::<f32>(), || items.len());
                (mapped, state, mutated, a, b)
            })
        };
        let pooled = with_pool(true, run);
        let scoped = with_pool(false, run);
        assert_eq!(pooled, scoped);
    }

    #[test]
    fn with_pool_restores_override_on_panic() {
        let before = pool::set_override(0);
        pool::set_override(before);
        let result = std::panic::catch_unwind(|| with_pool(false, || panic!("boom")));
        assert!(result.is_err());
        let after = pool::set_override(before);
        assert_eq!(after, before);
    }

    #[test]
    fn join_propagates_local_closure_panic_without_losing_remote_side() {
        // The local (`a`) side panicking must still drain the remote job
        // before the borrowed frame unwinds — and the next dispatch must
        // work normally.
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                join(
                    || panic!("local side failed"),
                    || std::hint::black_box(7) * 6,
                )
            })
        });
        assert!(result.is_err());
        let (a, b) = with_threads(4, || join(|| 1 + 1, || 2 + 2));
        assert_eq!((a, b), (2, 4));
    }
}
