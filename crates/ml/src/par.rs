//! Deterministic data-parallel execution primitives.
//!
//! Everything here is built on `std::thread::scope` — no pool threads outlive
//! a call, no `unsafe`, no external dependencies. The core guarantee is that
//! results are **thread-count invariant**: [`par_map`] returns results in
//! input order regardless of how work was distributed, so any caller that
//! combines them in that order is bitwise reproducible across `1..=N`
//! threads. Callers that need associativity-sensitive reductions (e.g.
//! floating-point sums) must therefore fold the returned `Vec` serially.
//!
//! The worker count is resolved per call by [`threads`]:
//!
//! 1. a process-local override installed by [`set_threads`] / [`with_threads`];
//! 2. the `LEAKY_DNN_THREADS` environment variable, capped at
//!    [`std::thread::available_parallelism`] — every workload here is
//!    CPU-bound and bitwise thread-count invariant, so workers beyond the
//!    core count can only add context-switch and cache-thrash overhead,
//!    never speed;
//! 3. [`std::thread::available_parallelism`].
//!
//! The explicit overrides are *not* capped: tests use them to force the
//! parallel code paths on single-core machines, which the invariance
//! guarantee makes safe.
//!
//! # Examples
//!
//! ```
//! let squares = ml::par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod thresholds;

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread scope override installed by [`with_threads`]; 0 = unset.
    /// Thread-local (rather than process-wide) so concurrent callers — e.g.
    /// parallel test threads — cannot observe each other's scopes, and so
    /// nesting needs no reentrant lock.
    static SCOPE_OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Set on pool worker threads so nested [`par_map`] calls run serially
    /// instead of oversubscribing the machine.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolves the worker count for subsequent parallel calls on this thread:
/// [`with_threads`] scope, then [`set_threads`], then the
/// `LEAKY_DNN_THREADS` environment variable (capped at the detected
/// hardware parallelism, see the module docs), then
/// [`std::thread::available_parallelism`]. On a pool worker thread this is
/// always 1 (nested parallelism is serialized).
pub fn threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    let scoped = SCOPE_OVERRIDE.with(Cell::get);
    if scoped > 0 {
        return scoped;
    }
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("LEAKY_DNN_THREADS") {
        Ok(v) => resolve_env_threads(&v, hw).unwrap_or(hw),
        Err(_) => hw,
    }
}

/// Parses a `LEAKY_DNN_THREADS` value against the detected hardware
/// parallelism `hw`. Returns `None` for unparseable or zero values (callers
/// fall back to `hw`); positive values are capped at `hw` — the env var
/// tunes real machines, so oversubscription is never useful there, unlike
/// the uncapped [`set_threads`] / [`with_threads`] overrides tests use to
/// force multi-worker paths on small boxes (see the module docs).
fn resolve_env_threads(val: &str, hw: usize) -> Option<usize> {
    match val.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n.min(hw)),
        _ => None,
    }
}

/// Installs a process-wide thread-count override (0 clears it, falling back
/// to `LEAKY_DNN_THREADS` / detected parallelism).
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs `f` with this thread's worker count pinned to `n`, restoring the
/// previous scope afterwards (also on panic). Nests freely.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SCOPE_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Maps `f` over `items` on up to [`threads`] workers, returning results in
/// input order.
///
/// Work is distributed by an atomic index counter (dynamic load balancing);
/// each worker tags results with their input index and the merged output is
/// sorted by that index, so the result is identical for any worker count.
/// A panic inside `f` propagates to the caller once all workers have
/// stopped picking up new work.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    local.push((idx, f(idx, &items[idx])));
                }
                // Poisoning only happens if another worker panicked while
                // extending; our results are then discarded anyway because
                // the scope re-raises that panic.
                collected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });
    let mut merged = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    merged.sort_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`par_map`], but stays on the calling thread when `work` — any
/// caller-chosen unit: items, samples, rows — is below `min_work`.
///
/// Every [`par_map`] call spawns fresh scoped workers (tens of microseconds
/// each); for small inputs that fan-out is pure overhead — the
/// `attack_extract` stage of `BENCH_pipeline.json` measured a 0.81×
/// "speedup" before callers gated on work size. Results are bitwise
/// identical on either path, so the gate is purely a scheduling decision.
pub fn par_map_if_work<T, R, F>(work: usize, min_work: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if work < min_work {
        items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
    } else {
        par_map(items, f)
    }
}

/// Maps `f` over `items` **in place** on up to [`threads`] workers,
/// returning the per-item results in input order.
///
/// The mutable counterpart of [`par_map`] for element-wise state machines
/// (e.g. the fleet orchestrator advancing per-session simulations): the
/// slice is statically partitioned into one contiguous chunk per worker, so
/// every element is visited exactly once with exclusive access and no
/// `unsafe`. As long as `f` is a pure function of the element (no shared
/// mutable state), results and final element states are bitwise identical
/// for any worker count.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                s.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Runs two closures, concurrently when more than one worker is available,
/// and returns both results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for n in [1usize, 2, 3, 8] {
            let out = with_threads(n, || par_map(&items, |i, &x| (i, x * 2)));
            for (i, &(idx, doubled)) in out.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(doubled, 2 * i);
            }
        }
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let one = with_threads(1, || par_map(&items, |_, &x| x.sin() * x.cos()));
        for n in [2usize, 4, 7, 16] {
            let many = with_threads(n, || par_map(&items, |_, &x| x.sin() * x.cos()));
            assert_eq!(one, many, "results differ at {} threads", n);
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn with_threads_restores_override_after_nesting() {
        let before = SCOPE_OVERRIDE.with(Cell::get);
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(5, || assert_eq!(threads(), 5));
            assert_eq!(threads(), 3);
        });
        assert_eq!(SCOPE_OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn with_threads_restores_override_on_panic() {
        let before = SCOPE_OVERRIDE.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_threads(9, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(SCOPE_OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn pool_workers_report_single_thread() {
        let flags = with_threads(4, || par_map(&[0u8; 8], |_, _| threads()));
        assert!(flags.iter().all(|&n| n == 1), "workers saw {:?}", flags);
    }

    #[test]
    fn par_map_if_work_agrees_on_both_paths() {
        let items: Vec<f32> = (0..64).map(|i| i as f32 * 0.31).collect();
        let serial = par_map_if_work(10, 1000, &items, |_, &x| x.sin() * 3.0);
        let parallel = with_threads(4, || {
            par_map_if_work(5000, 1000, &items, |_, &x| x.sin() * 3.0)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_mut_visits_every_element_once_in_order() {
        for n in [1usize, 2, 3, 8] {
            let mut items: Vec<usize> = (0..257).collect();
            let out = with_threads(n, || {
                par_map_mut(&mut items, |i, x| {
                    *x += 1;
                    (i, *x)
                })
            });
            assert_eq!(items, (1..258).collect::<Vec<_>>(), "at {} threads", n);
            for (i, &(idx, v)) in out.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(v, i + 1);
            }
        }
    }

    #[test]
    fn par_map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, x| *x).is_empty());
        let mut one = [41u32];
        assert_eq!(par_map_mut(&mut one, |_, x| *x + 1), vec![42]);
    }

    #[test]
    fn join_returns_both_results() {
        for n in [1usize, 4] {
            let (a, b) = with_threads(n, || join(|| 6 * 7, || "side".len()));
            assert_eq!(a, 42);
            assert_eq!(b, 4);
        }
    }

    #[test]
    fn nested_par_map_stays_correct() {
        let outer: Vec<usize> = (0..8).collect();
        let inner: Vec<usize> = (0..10).collect();
        let out = with_threads(4, || {
            par_map(&outer, |_, &i| {
                par_map(&inner, |_, &j| i * 10 + j).iter().sum::<usize>()
            })
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..10).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn env_thread_requests_are_capped_at_hardware_parallelism() {
        assert_eq!(resolve_env_threads("16", 4), Some(4));
        assert_eq!(resolve_env_threads("64", 1), Some(1));
    }

    #[test]
    fn env_thread_requests_below_the_cap_pass_through() {
        assert_eq!(resolve_env_threads("2", 8), Some(2));
        assert_eq!(resolve_env_threads(" 3 ", 4), Some(3));
        assert_eq!(resolve_env_threads("8", 8), Some(8));
    }

    #[test]
    fn zero_or_garbage_env_threads_fall_back() {
        assert_eq!(resolve_env_threads("0", 4), None);
        assert_eq!(resolve_env_threads("", 4), None);
        assert_eq!(resolve_env_threads("lots", 4), None);
        assert_eq!(resolve_env_threads("-2", 4), None);
        assert_eq!(resolve_env_threads("3.5", 4), None);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |i, _| {
                    if i == 17 {
                        panic!("worker 17 failed");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
