//! A from-scratch LSTM layer with full backpropagation-through-time.
//!
//! This is the building block behind the paper's five inference models
//! (Table III: `Mlong`/`Mop`/`Vlong`/`Vop` use LSTM-256, `Mhp` uses LSTM-128).
//! Gate layout in the packed weight matrices is `[input, forget, cell, output]`.

use rand::rngs::StdRng;

use crate::activation::{sigmoid, sigmoid_deriv_from_output, tanh_deriv_from_output};
use crate::matrix::{dot, Matrix};

/// One LSTM layer: packed gate weights for inputs (`wx`: 4H×I), recurrent
/// state (`wh`: 4H×H) and biases (`b`: 4H).
#[derive(Debug, Clone)]
pub struct LstmLayer {
    input_size: usize,
    hidden_size: usize,
    /// Input weights, 4H x I.
    pub wx: Matrix,
    /// Recurrent weights, 4H x H.
    pub wh: Matrix,
    /// Gate biases, length 4H.
    pub b: Vec<f32>,
}

/// Per-timestep activations cached by [`LstmLayer::forward`], consumed by
/// [`LstmLayer::backward`].
#[derive(Debug, Clone)]
pub struct LstmCache {
    /// Inputs per timestep (T x I).
    xs: Matrix,
    /// Gate activations per timestep: i, f, g, o each T x H.
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    /// Cell states per timestep (T x H).
    c: Matrix,
    /// `tanh` of each cell state (T x H) — computed on the forward pass
    /// anyway (for `h = o * tanh(c)`), cached so backward never recomputes a
    /// transcendental.
    tc: Matrix,
    /// Hidden states per timestep (T x H).
    pub h: Matrix,
}

/// Gradients for one [`LstmLayer`], same shapes as the parameters.
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// d/d wx, 4H x I.
    pub wx: Matrix,
    /// d/d wh, 4H x H.
    pub wh: Matrix,
    /// d/d b, length 4H.
    pub b: Vec<f32>,
}

impl LstmCache {
    /// A placeholder cache ready to be shaped by [`LstmLayer::forward_into`].
    pub fn empty() -> Self {
        LstmCache {
            xs: Matrix::zeros(1, 1),
            i: Matrix::zeros(1, 1),
            f: Matrix::zeros(1, 1),
            g: Matrix::zeros(1, 1),
            o: Matrix::zeros(1, 1),
            c: Matrix::zeros(1, 1),
            tc: Matrix::zeros(1, 1),
            h: Matrix::zeros(1, 1),
        }
    }
}

impl LstmGrads {
    /// A placeholder gradient set ready to be shaped by
    /// [`LstmLayer::backward_into`].
    pub fn empty() -> Self {
        LstmGrads {
            wx: Matrix::zeros(1, 1),
            wh: Matrix::zeros(1, 1),
            // cold-init: shaped once by backward_into, then reused. lint: allow(A1)
            b: Vec::new(),
        }
    }
}

/// Reusable temporaries for [`LstmLayer::forward_into`] /
/// [`LstmLayer::backward_into`]: every intermediate the fused passes need,
/// resized (never reallocated, once warm) per call. One scratch serves any
/// number of layers and sequence lengths because each pass fully overwrites
/// what it reads.
#[derive(Debug, Clone)]
pub struct LstmScratch {
    x_proj: Matrix,
    wxt: Matrix,
    wht: Matrix,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    pre: Vec<f32>,
    acc: Vec<f32>,
    da_mat: Matrix,
    dh_next: Vec<f32>,
    dc_next: Vec<f32>,
    da_rev: Matrix,
    xs_rev: Matrix,
    da_tail: Matrix,
    h_tail: Matrix,
    /// Batched-kernel state: previous hidden/cell states, one row per
    /// sequence in the bucket (B x H).
    h_prev_b: Matrix,
    c_prev_b: Matrix,
    /// Batched recurrent projection for one timestep (B x 4H).
    acc_b: Matrix,
    /// One timestep's gate deltas across the bucket (B x 4H).
    da_t: Matrix,
    /// Batched backward carries (B x H).
    dh_next_b: Matrix,
    dc_next_b: Matrix,
}

impl LstmScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        LstmScratch {
            x_proj: Matrix::zeros(1, 1),
            wxt: Matrix::zeros(1, 1),
            wht: Matrix::zeros(1, 1),
            // cold-init: every buffer below is grown on first use by the
            // fused passes and reused from then on (pool-slot construction).
            h_prev: Vec::new(), // lint: allow(A1)
            c_prev: Vec::new(), // lint: allow(A1)
            pre: Vec::new(),    // lint: allow(A1)
            acc: Vec::new(),    // lint: allow(A1)
            da_mat: Matrix::zeros(1, 1),
            dh_next: Vec::new(), // lint: allow(A1)
            dc_next: Vec::new(), // lint: allow(A1)
            da_rev: Matrix::zeros(1, 1),
            xs_rev: Matrix::zeros(1, 1),
            da_tail: Matrix::zeros(1, 1),
            h_tail: Matrix::zeros(1, 1),
            h_prev_b: Matrix::zeros(1, 1),
            c_prev_b: Matrix::zeros(1, 1),
            acc_b: Matrix::zeros(1, 1),
            da_t: Matrix::zeros(1, 1),
            dh_next_b: Matrix::zeros(1, 1),
            dc_next_b: Matrix::zeros(1, 1),
        }
    }
}

impl Default for LstmScratch {
    fn default() -> Self {
        LstmScratch::new()
    }
}

/// Clears `v` and refills it with `n` zeros, keeping its allocation.
fn reset_zeroed(v: &mut Vec<f32>, n: usize) {
    v.clear();
    v.resize(n, 0.0);
}

impl LstmLayer {
    /// Creates a layer with Xavier-initialized weights and forget-gate bias 1
    /// (the standard trick to preserve long-range memory early in training).
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut StdRng) -> Self {
        assert!(
            input_size > 0 && hidden_size > 0,
            "lstm sizes must be non-zero"
        );
        let mut b = vec![0.0; 4 * hidden_size];
        for v in b[hidden_size..2 * hidden_size].iter_mut() {
            *v = 1.0;
        }
        LstmLayer {
            input_size,
            hidden_size,
            wx: Matrix::xavier(4 * hidden_size, input_size, rng),
            wh: Matrix::xavier(4 * hidden_size, hidden_size, rng),
            b,
        }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-state dimensionality.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    /// Runs the layer over a sequence (`xs`: T x I), starting from zero
    /// state, returning the cache whose `h` field is the output sequence.
    ///
    /// The input projections for all four gates and all timesteps are
    /// computed as one fused `xs * wx^T` GEMM up front; only the recurrent
    /// `wh * h` term stays per-timestep (it is inherently sequential). The
    /// per-element summation order matches [`LstmLayer::forward_naive`]
    /// exactly, so the two paths are bitwise equal.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols() != input_size`.
    pub fn forward(&self, xs: &Matrix) -> LstmCache {
        let mut cache = LstmCache::empty();
        let mut scratch = LstmScratch::new();
        self.forward_into(xs, &mut cache, &mut scratch);
        cache
    }

    /// In-place variant of [`LstmLayer::forward`]: reshapes and fills `cache`
    /// using `scratch` for temporaries, performing no allocation once both
    /// have warm capacity. Bitwise identical to [`LstmLayer::forward`] (same
    /// kernels, same order).
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols() != input_size`.
    pub fn forward_into(&self, xs: &Matrix, cache: &mut LstmCache, scratch: &mut LstmScratch) {
        assert_eq!(xs.cols(), self.input_size, "lstm input width mismatch");
        let t_len = xs.rows();
        let h_size = self.hidden_size;
        cache.xs.copy_from(xs);
        cache.i.resize_zeroed(t_len, h_size);
        cache.f.resize_zeroed(t_len, h_size);
        cache.g.resize_zeroed(t_len, h_size);
        cache.o.resize_zeroed(t_len, h_size);
        cache.c.resize_zeroed(t_len, h_size);
        cache.tc.resize_zeroed(t_len, h_size);
        cache.h.resize_zeroed(t_len, h_size);
        // T x 4H: x_proj[t][j] = dot(xs.row(t), wx.row(j)). Computed as
        // xs * wx^T through the transposed copy: `matmul`'s per-element `k`
        // chain is the same ascending dot, but its inner loop runs over
        // independent output columns, which vectorizes (the naive path's
        // horizontal dot reduction cannot).
        self.wx.transposed_into(&mut scratch.wxt);
        xs.matmul_into(&scratch.wxt, &mut scratch.x_proj);
        // H x 4H: the recurrent matvec below walks wh^T rows for the same
        // lane-parallel inner loop.
        self.wh.transposed_into(&mut scratch.wht);
        reset_zeroed(&mut scratch.h_prev, h_size);
        reset_zeroed(&mut scratch.c_prev, h_size);
        reset_zeroed(&mut scratch.pre, 4 * h_size);
        reset_zeroed(&mut scratch.acc, 4 * h_size);
        let (h_prev, c_prev, pre, acc) = (
            &mut scratch.h_prev,
            &mut scratch.c_prev,
            &mut scratch.pre,
            &mut scratch.acc,
        );
        for t in 0..t_len {
            let xp = scratch.x_proj.row(t);
            // acc[j] = dot(wh.row(j), h_prev), ascending k per element —
            // the naive chain, with j as the vector lane.
            acc.fill(0.0);
            for (k, &hv) in h_prev.iter().enumerate() {
                for (a, &w) in acc.iter_mut().zip(scratch.wht.row(k)) {
                    *a += w * hv;
                }
            }
            for (((p, &x), &a), &b) in pre.iter_mut().zip(xp).zip(acc.iter()).zip(&self.b) {
                *p = x + a + b;
            }
            let i_row = cache.i.row_mut(t);
            let f_row = cache.f.row_mut(t);
            let g_row = cache.g.row_mut(t);
            let o_row = cache.o.row_mut(t);
            let c_row = cache.c.row_mut(t);
            let tc_row = cache.tc.row_mut(t);
            let h_row = cache.h.row_mut(t);
            for k in 0..h_size {
                let i = sigmoid(pre[k]);
                let f = sigmoid(pre[h_size + k]);
                let g = pre[2 * h_size + k].tanh();
                let o = sigmoid(pre[3 * h_size + k]);
                let c = f * c_prev[k] + i * g;
                let tanh_c = c.tanh();
                let h = o * tanh_c;
                i_row[k] = i;
                f_row[k] = f;
                g_row[k] = g;
                o_row[k] = o;
                c_row[k] = c;
                tc_row[k] = tanh_c;
                h_row[k] = h;
            }
            h_prev.copy_from_slice(h_row);
            c_prev.copy_from_slice(c_row);
        }
    }

    /// Reference forward pass: per-timestep, per-gate dot products. Kept as
    /// the ground truth [`LstmLayer::forward`] must match bitwise
    /// (property-tested).
    pub fn forward_naive(&self, xs: &Matrix) -> LstmCache {
        assert_eq!(xs.cols(), self.input_size, "lstm input width mismatch");
        let t_len = xs.rows();
        let h_size = self.hidden_size;
        let mut cache = LstmCache {
            xs: xs.clone(),
            i: Matrix::zeros(t_len, h_size),
            f: Matrix::zeros(t_len, h_size),
            g: Matrix::zeros(t_len, h_size),
            o: Matrix::zeros(t_len, h_size),
            c: Matrix::zeros(t_len, h_size),
            tc: Matrix::zeros(t_len, h_size),
            h: Matrix::zeros(t_len, h_size),
        };
        let mut h_prev = vec![0.0f32; h_size];
        let mut c_prev = vec![0.0f32; h_size];
        let mut pre = vec![0.0f32; 4 * h_size];
        for t in 0..t_len {
            let x = xs.row(t);
            for (j, p) in pre.iter_mut().enumerate() {
                *p = dot(self.wx.row(j), x) + dot(self.wh.row(j), &h_prev) + self.b[j];
            }
            for k in 0..h_size {
                let i = sigmoid(pre[k]);
                let f = sigmoid(pre[h_size + k]);
                let g = pre[2 * h_size + k].tanh();
                let o = sigmoid(pre[3 * h_size + k]);
                let c = f * c_prev[k] + i * g;
                let tanh_c = c.tanh();
                let h = o * tanh_c;
                cache.i[(t, k)] = i;
                cache.f[(t, k)] = f;
                cache.g[(t, k)] = g;
                cache.o[(t, k)] = o;
                cache.c[(t, k)] = c;
                cache.tc[(t, k)] = tanh_c;
                cache.h[(t, k)] = h;
            }
            h_prev.copy_from_slice(cache.h.row(t));
            c_prev.copy_from_slice(cache.c.row(t));
        }
        cache
    }

    /// Backpropagation through time.
    ///
    /// `dh_out` (T x H) is the upstream gradient on each timestep's hidden
    /// state. Returns the parameter gradients and the gradient with respect
    /// to the inputs (T x I), for stacking layers.
    ///
    /// The time loop only computes the gate deltas and the (sequential)
    /// hidden-state carry; the parameter gradients and `dx` are then four
    /// fused GEMMs over the full delta matrix. The serial loop accumulates
    /// those gradients in *descending* `t` order, so the GEMM inputs are
    /// row-reversed copies: `t_matmul`'s ascending row scan then reproduces
    /// the exact same floating-point summation order, keeping this path
    /// bitwise equal to [`LstmLayer::backward_naive`].
    pub fn backward(&self, cache: &LstmCache, dh_out: &Matrix) -> (LstmGrads, Matrix) {
        let mut grads = LstmGrads::empty();
        let mut dx = Matrix::zeros(1, 1);
        let mut scratch = LstmScratch::new();
        self.backward_into(cache, dh_out, &mut grads, &mut dx, &mut scratch);
        (grads, dx)
    }

    /// In-place variant of [`LstmLayer::backward`]: reshapes and fills
    /// `grads` and `dx` using `scratch` for temporaries, performing no
    /// allocation once everything has warm capacity. Bitwise identical to
    /// [`LstmLayer::backward`].
    pub fn backward_into(
        &self,
        cache: &LstmCache,
        dh_out: &Matrix,
        grads: &mut LstmGrads,
        dx: &mut Matrix,
        scratch: &mut LstmScratch,
    ) {
        let t_len = cache.h.rows();
        let h_size = self.hidden_size;
        assert_eq!(dh_out.rows(), t_len, "dh_out timestep mismatch");
        assert_eq!(dh_out.cols(), h_size, "dh_out width mismatch");

        scratch.da_mat.resize_zeroed(t_len, 4 * h_size);
        reset_zeroed(&mut scratch.dh_next, h_size);
        reset_zeroed(&mut scratch.dc_next, h_size);
        let da_mat = &mut scratch.da_mat;
        let dh_next = &mut scratch.dh_next;
        let dc_next = &mut scratch.dc_next;

        for t in (0..t_len).rev() {
            let da = da_mat.row_mut(t);
            let i_row = cache.i.row(t);
            let f_row = cache.f.row(t);
            let g_row = cache.g.row(t);
            let o_row = cache.o.row(t);
            let tc_row = cache.tc.row(t);
            let dh_row = dh_out.row(t);
            for k in 0..h_size {
                let i = i_row[k];
                let f = f_row[k];
                let g = g_row[k];
                let o = o_row[k];
                let c_prev = if t == 0 { 0.0 } else { cache.c[(t - 1, k)] };
                let tanh_c = tc_row[k];

                let dh = dh_row[k] + dh_next[k];
                let d_o = dh * tanh_c;
                let dc = dh * o * tanh_deriv_from_output(tanh_c) + dc_next[k];
                let d_i = dc * g;
                let d_g = dc * i;
                let d_f = dc * c_prev;
                dc_next[k] = dc * f;

                da[k] = d_i * sigmoid_deriv_from_output(i);
                da[h_size + k] = d_f * sigmoid_deriv_from_output(f);
                da[2 * h_size + k] = d_g * tanh_deriv_from_output(g);
                da[3 * h_size + k] = d_o * sigmoid_deriv_from_output(o);
            }
            let da = da_mat.row(t);
            dh_next.fill(0.0);
            for (j, &a) in da.iter().enumerate() {
                for (d, &w) in dh_next.iter_mut().zip(self.wh.row(j)) {
                    *d += a * w;
                }
            }
        }

        // dx[t] = da[t] * wx: per element the j summation runs ascending,
        // exactly like the serial inner loop.
        da_mat.matmul_into(&self.wx, dx);

        let LstmScratch {
            da_mat,
            da_rev,
            xs_rev,
            da_tail,
            h_tail,
            ..
        } = scratch;
        param_grads_impl(
            h_size, da_mat, &cache.xs, &cache.h, grads, da_rev, xs_rev, da_tail, h_tail,
        );
    }

    /// Accumulates the parameter gradients (`wx`, `wh`, `b`) for one
    /// sequence from its gate-delta matrix `da_mat` (T x 4H), its layer
    /// inputs `xs` (T x I) and its hidden states `h` (T x H).
    ///
    /// This is the exact tail of [`LstmLayer::backward_into`], factored out
    /// so the batch-packed path can reuse it verbatim: parameter gradients
    /// must accumulate per example in descending-`t` order (the serial BPTT
    /// order), which a packed-row GEMM over an interleaved bucket would not
    /// reproduce. Calling the same code on per-example matrices extracted
    /// from the packed tensors keeps the two paths bitwise equal by
    /// construction.
    pub fn param_grads_into(
        &self,
        da_mat: &Matrix,
        xs: &Matrix,
        h: &Matrix,
        grads: &mut LstmGrads,
        scratch: &mut LstmScratch,
    ) {
        let LstmScratch {
            da_rev,
            xs_rev,
            da_tail,
            h_tail,
            ..
        } = scratch;
        param_grads_impl(
            self.hidden_size,
            da_mat,
            xs,
            h,
            grads,
            da_rev,
            xs_rev,
            da_tail,
            h_tail,
        );
    }

    /// Runs the layer over `batch` equal-length sequences packed batch-major
    /// into `xs`: row `t * batch + b` holds sequence `b`'s timestep `t`.
    /// Every sequence starts from zero state; the cache fields come back in
    /// the same packed layout.
    ///
    /// Each timestep's recurrent term is one fused `(B x H) * (H x 4H)` GEMM
    /// over the whole bucket instead of `B` independent matvecs. GEMM rows
    /// are independent and accumulate ascending-`k` per element, so every
    /// sequence's rows are bitwise identical to running
    /// [`LstmLayer::forward_into`] on that sequence alone (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols() != input_size`, `batch == 0`, or `xs.rows()` is
    /// not a multiple of `batch`.
    pub fn forward_batch_into(
        &self,
        xs: &Matrix,
        batch: usize,
        cache: &mut LstmCache,
        scratch: &mut LstmScratch,
    ) {
        self.forward_batch_stateful_into(xs, batch, None, cache, scratch);
    }

    /// [`LstmLayer::forward_batch_into`] with an explicit carry state: when
    /// `state` is `Some((h0, c0))` (each `B x H`, row `b` belonging to
    /// sequence `b`), the recurrence starts from those values instead of
    /// zero and the final hidden/cell states are written back into them.
    ///
    /// This is what lets streaming inference split one sequence into chunks:
    /// the per-timestep arithmetic is untouched, so running a sequence in
    /// chunks with the state carried between calls is bitwise identical to
    /// one whole-sequence call — the chunk boundary only decides *when* a
    /// timestep runs, never what it computes (property-tested in
    /// [`crate::seq`]). `state: None` is exactly the zero-state batch
    /// forward.
    pub fn forward_batch_stateful_into(
        &self,
        xs: &Matrix,
        batch: usize,
        state: Option<(&mut Matrix, &mut Matrix)>,
        cache: &mut LstmCache,
        scratch: &mut LstmScratch,
    ) {
        assert_eq!(xs.cols(), self.input_size, "lstm input width mismatch");
        assert!(batch > 0, "empty batch");
        assert_eq!(xs.rows() % batch, 0, "packed rows not a multiple of batch");
        let rows = xs.rows();
        let t_len = rows / batch;
        let h_size = self.hidden_size;
        cache.xs.copy_from(xs);
        cache.i.resize_zeroed(rows, h_size);
        cache.f.resize_zeroed(rows, h_size);
        cache.g.resize_zeroed(rows, h_size);
        cache.o.resize_zeroed(rows, h_size);
        cache.c.resize_zeroed(rows, h_size);
        cache.tc.resize_zeroed(rows, h_size);
        cache.h.resize_zeroed(rows, h_size);
        let LstmScratch {
            x_proj,
            wxt,
            wht,
            pre,
            h_prev_b,
            c_prev_b,
            acc_b,
            ..
        } = scratch;
        // (T*B) x 4H input projections for the whole bucket in one GEMM;
        // each row depends only on its own input row, so rows match the
        // per-sequence projection bitwise.
        self.wx.transposed_into(wxt);
        xs.matmul_into(wxt, x_proj);
        self.wh.transposed_into(wht);
        h_prev_b.resize_zeroed(batch, h_size);
        c_prev_b.resize_zeroed(batch, h_size);
        if let Some((h0, c0)) = &state {
            assert_eq!(h0.rows(), batch, "carry state batch mismatch");
            assert_eq!(h0.cols(), h_size, "carry state width mismatch");
            assert_eq!(c0.rows(), batch, "carry state batch mismatch");
            assert_eq!(c0.cols(), h_size, "carry state width mismatch");
            h_prev_b.copy_from(h0);
            c_prev_b.copy_from(c0);
        }
        reset_zeroed(pre, 4 * h_size);
        for t in 0..t_len {
            // acc[b][j] = dot(h_prev[b], wht[.][j]), ascending k per element
            // — the same chain as the per-sequence recurrent matvec (f32
            // multiplication commutes bitwise).
            h_prev_b.matmul_into(wht, acc_b);
            for bi in 0..batch {
                let r = t * batch + bi;
                let xp = x_proj.row(r);
                let acc = acc_b.row(bi);
                for (((p, &x), &a), &b) in pre.iter_mut().zip(xp).zip(acc).zip(&self.b) {
                    *p = x + a + b;
                }
                let c_prev = c_prev_b.row(bi);
                let i_row = cache.i.row_mut(r);
                let f_row = cache.f.row_mut(r);
                let g_row = cache.g.row_mut(r);
                let o_row = cache.o.row_mut(r);
                let c_row = cache.c.row_mut(r);
                let tc_row = cache.tc.row_mut(r);
                let h_row = cache.h.row_mut(r);
                for k in 0..h_size {
                    let i = sigmoid(pre[k]);
                    let f = sigmoid(pre[h_size + k]);
                    let g = pre[2 * h_size + k].tanh();
                    let o = sigmoid(pre[3 * h_size + k]);
                    let c = f * c_prev[k] + i * g;
                    let tanh_c = c.tanh();
                    let h = o * tanh_c;
                    i_row[k] = i;
                    f_row[k] = f;
                    g_row[k] = g;
                    o_row[k] = o;
                    c_row[k] = c;
                    tc_row[k] = tanh_c;
                    h_row[k] = h;
                }
                h_prev_b.row_mut(bi).copy_from_slice(cache.h.row(r));
                c_prev_b.row_mut(bi).copy_from_slice(cache.c.row(r));
            }
        }
        if let Some((h0, c0)) = state {
            h0.copy_from(h_prev_b);
            c0.copy_from(c_prev_b);
        }
    }

    /// Batched BPTT over a packed bucket (layout as in
    /// [`LstmLayer::forward_batch_into`]). Writes the packed gate-delta
    /// matrix into `da_packed` ((T*B) x 4H) and the packed input gradient
    /// into `dx` ((T*B) x I).
    ///
    /// The hidden-state carry `dh_next = da_t * wh` runs as one
    /// `(B x 4H) * (4H x H)` GEMM per timestep; per element it sums
    /// ascending-`j` exactly like the serial loop, so every sequence's rows
    /// are bitwise identical to [`LstmLayer::backward_into`] on that
    /// sequence alone. Parameter gradients are *not* computed here — their
    /// descending-`t` per-example accumulation order cannot be reproduced by
    /// a packed GEMM; extract each example's matrices and call
    /// [`LstmLayer::param_grads_into`].
    pub fn backward_batch_into(
        &self,
        cache: &LstmCache,
        batch: usize,
        dh_out: &Matrix,
        da_packed: &mut Matrix,
        dx: &mut Matrix,
        scratch: &mut LstmScratch,
    ) {
        let rows = cache.h.rows();
        assert!(batch > 0, "empty batch");
        assert_eq!(rows % batch, 0, "packed rows not a multiple of batch");
        let t_len = rows / batch;
        let h_size = self.hidden_size;
        assert_eq!(dh_out.rows(), rows, "dh_out packed row mismatch");
        assert_eq!(dh_out.cols(), h_size, "dh_out width mismatch");

        da_packed.resize_zeroed(rows, 4 * h_size);
        let LstmScratch {
            da_t,
            dh_next_b,
            dc_next_b,
            ..
        } = scratch;
        dh_next_b.resize_zeroed(batch, h_size);
        dc_next_b.resize_zeroed(batch, h_size);
        da_t.resize_zeroed(batch, 4 * h_size);
        for t in (0..t_len).rev() {
            for bi in 0..batch {
                let r = t * batch + bi;
                let i_row = cache.i.row(r);
                let f_row = cache.f.row(r);
                let g_row = cache.g.row(r);
                let o_row = cache.o.row(r);
                let tc_row = cache.tc.row(r);
                let dh_row = dh_out.row(r);
                let dh_next = dh_next_b.row(bi);
                let dc_next = dc_next_b.row_mut(bi);
                let da = da_packed.row_mut(r);
                for k in 0..h_size {
                    let i = i_row[k];
                    let f = f_row[k];
                    let g = g_row[k];
                    let o = o_row[k];
                    let c_prev = if t == 0 {
                        0.0
                    } else {
                        cache.c[((t - 1) * batch + bi, k)]
                    };
                    let tanh_c = tc_row[k];

                    let dh = dh_row[k] + dh_next[k];
                    let d_o = dh * tanh_c;
                    let dc = dh * o * tanh_deriv_from_output(tanh_c) + dc_next[k];
                    let d_i = dc * g;
                    let d_g = dc * i;
                    let d_f = dc * c_prev;
                    dc_next[k] = dc * f;

                    da[k] = d_i * sigmoid_deriv_from_output(i);
                    da[h_size + k] = d_f * sigmoid_deriv_from_output(f);
                    da[2 * h_size + k] = d_g * tanh_deriv_from_output(g);
                    da[3 * h_size + k] = d_o * sigmoid_deriv_from_output(o);
                }
            }
            // This timestep's gate deltas occupy contiguous packed rows
            // t*B..(t+1)*B; dh_next[b][k] = sum_j da[b][j] * wh[j][k],
            // ascending j per element — the serial carry's exact chain.
            da_t.as_mut_slice().copy_from_slice(
                &da_packed.as_slice()[t * batch * 4 * h_size..(t + 1) * batch * 4 * h_size],
            );
            da_t.matmul_into(&self.wh, dh_next_b);
        }
        // Packed dx: row-independent, so each sequence's rows match the
        // per-sequence `da_mat * wx` bitwise.
        da_packed.matmul_into(&self.wx, dx);
    }

    /// Reference BPTT: the straightforward per-timestep accumulation loops.
    /// Kept as the ground truth [`LstmLayer::backward`] must match bitwise
    /// (property-tested).
    pub fn backward_naive(&self, cache: &LstmCache, dh_out: &Matrix) -> (LstmGrads, Matrix) {
        let t_len = cache.h.rows();
        let h_size = self.hidden_size;
        assert_eq!(dh_out.rows(), t_len, "dh_out timestep mismatch");
        assert_eq!(dh_out.cols(), h_size, "dh_out width mismatch");

        let mut grads = LstmGrads {
            wx: Matrix::zeros(4 * h_size, self.input_size),
            wh: Matrix::zeros(4 * h_size, h_size),
            b: vec![0.0; 4 * h_size],
        };
        let mut dx = Matrix::zeros(t_len, self.input_size);
        let mut dh_next = vec![0.0f32; h_size];
        let mut dc_next = vec![0.0f32; h_size];
        let mut da = vec![0.0f32; 4 * h_size];

        for t in (0..t_len).rev() {
            for k in 0..h_size {
                let i = cache.i[(t, k)];
                let f = cache.f[(t, k)];
                let g = cache.g[(t, k)];
                let o = cache.o[(t, k)];
                let c = cache.c[(t, k)];
                let c_prev = if t == 0 { 0.0 } else { cache.c[(t - 1, k)] };
                let tanh_c = c.tanh();

                let dh = dh_out[(t, k)] + dh_next[k];
                let d_o = dh * tanh_c;
                let dc = dh * o * tanh_deriv_from_output(tanh_c) + dc_next[k];
                let d_i = dc * g;
                let d_g = dc * i;
                let d_f = dc * c_prev;
                dc_next[k] = dc * f;

                da[k] = d_i * sigmoid_deriv_from_output(i);
                da[h_size + k] = d_f * sigmoid_deriv_from_output(f);
                da[2 * h_size + k] = d_g * tanh_deriv_from_output(g);
                da[3 * h_size + k] = d_o * sigmoid_deriv_from_output(o);
            }

            let x = cache.xs.row(t);
            let h_prev: &[f32] = if t == 0 { &[] } else { cache.h.row(t - 1) };
            dh_next.fill(0.0);
            for (j, &a) in da.iter().enumerate() {
                grads.b[j] += a;
                let wx_row = grads.wx.row_mut(j);
                for (w, &xv) in wx_row.iter_mut().zip(x.iter()) {
                    *w += a * xv;
                }
                if t > 0 {
                    let wh_row = grads.wh.row_mut(j);
                    for (w, &hv) in wh_row.iter_mut().zip(h_prev.iter()) {
                        *w += a * hv;
                    }
                }
                // dh_prev += wh[j]^T * a; dx += wx[j]^T * a
                for (d, &w) in dh_next.iter_mut().zip(self.wh.row(j)) {
                    *d += a * w;
                }
                let dx_row = dx.row_mut(t);
                for (d, &w) in dx_row.iter_mut().zip(self.wx.row(j)) {
                    *d += a * w;
                }
            }
        }
        (grads, dx)
    }
}

/// Shared tail of [`LstmLayer::backward_into`] and
/// [`LstmLayer::param_grads_into`]: accumulates `b` (descending `t`), `wx`
/// (row-reversed `t_matmul`) and `wh` (descending-`t` deltas against the
/// previous hidden state) for one sequence. Single definition so the
/// per-sequence and batch-packed paths cannot drift apart numerically.
#[allow(clippy::too_many_arguments)]
fn param_grads_impl(
    h_size: usize,
    da_mat: &Matrix,
    xs: &Matrix,
    h: &Matrix,
    grads: &mut LstmGrads,
    da_rev: &mut Matrix,
    xs_rev: &mut Matrix,
    da_tail: &mut Matrix,
    h_tail: &mut Matrix,
) {
    let t_len = da_mat.rows();
    reset_zeroed(&mut grads.b, 4 * h_size);
    for t in (0..t_len).rev() {
        for (bj, &a) in grads.b.iter_mut().zip(da_mat.row(t)) {
            *bj += a;
        }
    }
    reversed_rows_into(da_mat, da_rev);
    reversed_rows_into(xs, xs_rev);
    da_rev.t_matmul_into(xs_rev, &mut grads.wx);
    if t_len > 1 {
        // Gate deltas for t = T-1..1 (descending) against h for t-1.
        da_tail.resize_zeroed(t_len - 1, 4 * h_size);
        h_tail.resize_zeroed(t_len - 1, h_size);
        for (r, t) in (1..t_len).rev().enumerate() {
            da_tail.set_row(r, da_rev.row(t_len - 1 - t));
            h_tail.set_row(r, h.row(t - 1));
        }
        da_tail.t_matmul_into(h_tail, &mut grads.wh);
    } else {
        grads.wh.resize_zeroed(4 * h_size, h_size);
    }
}

/// Writes `m` with the row order reversed into `out` (used to turn an
/// ascending GEMM row scan into a descending-`t` accumulation).
fn reversed_rows_into(m: &Matrix, out: &mut Matrix) {
    out.resize_zeroed(m.rows(), m.cols());
    for t in 0..m.rows() {
        out.set_row(t, m.row(m.rows() - 1 - t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_layer(seed: u64) -> LstmLayer {
        let mut rng = StdRng::seed_from_u64(seed);
        LstmLayer::new(3, 4, &mut rng)
    }

    fn sample_input() -> Matrix {
        Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[0.1, 0.9, -0.2], &[-0.7, 0.4, 0.6]])
    }

    /// Scalar objective: sum of all hidden states. Its gradient wrt every
    /// parameter can be checked with central finite differences.
    fn objective(layer: &LstmLayer, xs: &Matrix) -> f32 {
        layer.forward(xs).h.sum()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let layer = tiny_layer(42);
        let xs = sample_input();
        let cache = layer.forward(&xs);
        assert_eq!(cache.h.rows(), 3);
        assert_eq!(cache.h.cols(), 4);
        // Hidden state is o * tanh(c), so |h| < 1 always.
        assert!(cache.h.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn forward_is_deterministic() {
        let layer = tiny_layer(42);
        let xs = sample_input();
        let a = layer.forward(&xs);
        let b = layer.forward(&xs);
        assert_eq!(a.h, b.h);
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let layer = tiny_layer(7);
        let xs = sample_input();
        let cache = layer.forward(&xs);
        let dh = Matrix::filled(3, 4, 1.0); // d(sum h)/dh = 1 everywhere
        let (grads, dx) = layer.backward(&cache, &dh);

        let eps = 1e-3f32;
        // Check a sample of wx entries.
        for &(r, c) in &[(0usize, 0usize), (5, 1), (11, 2), (15, 0)] {
            let mut lp = layer.clone();
            lp.wx[(r, c)] += eps;
            let mut lm = layer.clone();
            lm.wx[(r, c)] -= eps;
            let fd = (objective(&lp, &xs) - objective(&lm, &xs)) / (2.0 * eps);
            assert!(
                (grads.wx[(r, c)] - fd).abs() < 2e-2,
                "wx[{},{}]: analytic {} vs fd {}",
                r,
                c,
                grads.wx[(r, c)],
                fd
            );
        }
        // Check a sample of wh entries.
        for &(r, c) in &[(1usize, 1usize), (7, 3), (14, 2)] {
            let mut lp = layer.clone();
            lp.wh[(r, c)] += eps;
            let mut lm = layer.clone();
            lm.wh[(r, c)] -= eps;
            let fd = (objective(&lp, &xs) - objective(&lm, &xs)) / (2.0 * eps);
            assert!(
                (grads.wh[(r, c)] - fd).abs() < 2e-2,
                "wh[{},{}]: analytic {} vs fd {}",
                r,
                c,
                grads.wh[(r, c)],
                fd
            );
        }
        // Check biases.
        for j in [0usize, 6, 10, 15] {
            let mut lp = layer.clone();
            lp.b[j] += eps;
            let mut lm = layer.clone();
            lm.b[j] -= eps;
            let fd = (objective(&lp, &xs) - objective(&lm, &xs)) / (2.0 * eps);
            assert!(
                (grads.b[j] - fd).abs() < 2e-2,
                "b[{}]: analytic {} vs fd {}",
                j,
                grads.b[j],
                fd
            );
        }
        // Check input gradients.
        for &(t, c) in &[(0usize, 0usize), (1, 2), (2, 1)] {
            let mut xp = xs.clone();
            xp[(t, c)] += eps;
            let mut xm = xs.clone();
            xm[(t, c)] -= eps;
            let fd = (objective(&layer, &xp) - objective(&layer, &xm)) / (2.0 * eps);
            assert!(
                (dx[(t, c)] - fd).abs() < 2e-2,
                "dx[{},{}]: analytic {} vs fd {}",
                t,
                c,
                dx[(t, c)],
                fd
            );
        }
    }

    /// Generator for LSTM problem shapes `(in_dim, hidden, t_len)` — `t_len`
    /// includes the single-step (`T = 1`) edge and sequences long enough to
    /// exercise the recurrence and BPTT accumulation loops.
    fn lstm_shape() -> testkit::Gen<(usize, usize, usize)> {
        testkit::gen::zip3(
            testkit::gen::usize_in(1, 8),
            testkit::gen::usize_in(1, 9),
            testkit::gen::usize_in(1, 40),
        )
    }

    /// Weights and inputs are a pure function of the shape, so a shrunk
    /// counterexample replays from the printed tuple alone.
    fn shape_rng(tag: u64, (i, h, t): (usize, usize, usize)) -> StdRng {
        StdRng::seed_from_u64(tag ^ ((i as u64) << 40 | (h as u64) << 20 | t as u64))
    }

    #[test]
    fn fused_paths_match_naive_bitwise() {
        testkit::check(
            "lstm_fused_vs_naive",
            &lstm_shape(),
            |&(in_dim, hidden, t_len)| {
                let mut rng = shape_rng(99, (in_dim, hidden, t_len));
                let layer = LstmLayer::new(in_dim, hidden, &mut rng);
                let xs = Matrix::uniform(t_len, in_dim, 1.0, &mut rng);
                let fused = layer.forward(&xs);
                let naive = layer.forward_naive(&xs);
                testkit::prop::holds(fused.h == naive.h, "forward h differs")?;
                testkit::prop::holds(fused.c == naive.c, "forward c differs")?;
                let dh = Matrix::uniform(t_len, hidden, 1.0, &mut rng);
                let (gf, dxf) = layer.backward(&fused, &dh);
                let (gn, dxn) = layer.backward_naive(&naive, &dh);
                testkit::prop::holds(gf.wx == gn.wx, "wx grads differ")?;
                testkit::prop::holds(gf.wh == gn.wh, "wh grads differ")?;
                testkit::prop::holds(gf.b == gn.b, "b grads differ")?;
                testkit::prop::holds(dxf == dxn, "dx differs")
            },
        );
    }

    #[test]
    fn reused_cache_and_scratch_match_fresh_allocations_bitwise() {
        // Pairs of sequence lengths run back-to-back through one set of
        // buffers: shrinking then growing T exercises stale-capacity reuse.
        let schedule =
            testkit::gen::zip2(testkit::gen::usize_in(1, 12), testkit::gen::usize_in(1, 12));
        testkit::check("lstm_buffer_reuse", &schedule, |&(t_first, t_second)| {
            let mut rng = StdRng::seed_from_u64(0x5c1a ^ (t_first * 64 + t_second) as u64);
            let layer = LstmLayer::new(5, 7, &mut rng);
            let mut cache = LstmCache::empty();
            let mut grads = LstmGrads::empty();
            let mut dx = Matrix::zeros(1, 1);
            let mut scratch = LstmScratch::new();
            for t_len in [t_first, t_second] {
                let xs = Matrix::uniform(t_len, 5, 1.0, &mut rng);
                let dh = Matrix::uniform(t_len, 7, 1.0, &mut rng);
                layer.forward_into(&xs, &mut cache, &mut scratch);
                layer.backward_into(&cache, &dh, &mut grads, &mut dx, &mut scratch);
                let fresh_cache = layer.forward(&xs);
                let (fresh_grads, fresh_dx) = layer.backward(&fresh_cache, &dh);
                testkit::prop::holds(cache.h == fresh_cache.h, format!("h differs at T={t_len}"))?;
                testkit::prop::holds(
                    grads.wx == fresh_grads.wx,
                    format!("wx differs at T={t_len}"),
                )?;
                testkit::prop::holds(
                    grads.wh == fresh_grads.wh,
                    format!("wh differs at T={t_len}"),
                )?;
                testkit::prop::holds(grads.b == fresh_grads.b, format!("b differs at T={t_len}"))?;
                testkit::prop::holds(dx == fresh_dx, format!("dx differs at T={t_len}"))?;
            }
            Ok(())
        });
    }

    /// Packs `batch` copies-with-distinct-contents sequences batch-major
    /// (row `t*B + b`) and checks the batched kernels reproduce each
    /// sequence's per-example forward/backward results bitwise, including
    /// parameter gradients recovered through `param_grads_into`.
    #[test]
    fn batched_kernels_match_per_sequence_bitwise() {
        let shape = testkit::gen::zip3(
            testkit::gen::zip2(testkit::gen::usize_in(1, 6), testkit::gen::usize_in(1, 7)),
            testkit::gen::usize_in(1, 12), // t_len
            testkit::gen::usize_in(1, 6),  // batch
        );
        testkit::check(
            "lstm_batched_vs_per_sequence",
            &shape,
            |&((in_dim, hidden), t_len, batch)| {
                let mut rng = shape_rng(0xba7c ^ ((batch as u64) << 60), (in_dim, hidden, t_len));
                let layer = LstmLayer::new(in_dim, hidden, &mut rng);
                let seqs: Vec<Matrix> = (0..batch)
                    .map(|_| Matrix::uniform(t_len, in_dim, 1.0, &mut rng))
                    .collect();
                let dhs: Vec<Matrix> = (0..batch)
                    .map(|_| Matrix::uniform(t_len, hidden, 1.0, &mut rng))
                    .collect();

                // Pack batch-major.
                let mut xs_packed = Matrix::zeros(t_len * batch, in_dim);
                let mut dh_packed = Matrix::zeros(t_len * batch, hidden);
                for (b, (xs, dh)) in seqs.iter().zip(&dhs).enumerate() {
                    for t in 0..t_len {
                        xs_packed.set_row(t * batch + b, xs.row(t));
                        dh_packed.set_row(t * batch + b, dh.row(t));
                    }
                }

                let mut cache = LstmCache::empty();
                let mut scratch = LstmScratch::new();
                layer.forward_batch_into(&xs_packed, batch, &mut cache, &mut scratch);
                let mut da_packed = Matrix::zeros(1, 1);
                let mut dx_packed = Matrix::zeros(1, 1);
                layer.backward_batch_into(
                    &cache,
                    batch,
                    &dh_packed,
                    &mut da_packed,
                    &mut dx_packed,
                    &mut scratch,
                );

                for (b, (xs, dh)) in seqs.iter().zip(&dhs).enumerate() {
                    let solo = layer.forward(xs);
                    let (solo_grads, solo_dx) = layer.backward(&solo, dh);
                    // Per-example matrices extracted from the packed tensors.
                    let mut h_ex = Matrix::zeros(t_len, hidden);
                    let mut da_ex = Matrix::zeros(t_len, 4 * hidden);
                    for t in 0..t_len {
                        let r = t * batch + b;
                        testkit::prop::holds(
                            cache.h.row(r) == solo.h.row(t),
                            format!("packed h row differs (b={b}, t={t})"),
                        )?;
                        testkit::prop::holds(
                            cache.c.row(r) == solo.c.row(t),
                            format!("packed c row differs (b={b}, t={t})"),
                        )?;
                        testkit::prop::holds(
                            dx_packed.row(r) == solo_dx.row(t),
                            format!("packed dx row differs (b={b}, t={t})"),
                        )?;
                        h_ex.set_row(t, cache.h.row(r));
                        da_ex.set_row(t, da_packed.row(r));
                    }
                    let mut grads = LstmGrads::empty();
                    layer.param_grads_into(&da_ex, xs, &h_ex, &mut grads, &mut scratch);
                    testkit::prop::holds(grads.wx == solo_grads.wx, "packed wx grads differ")?;
                    testkit::prop::holds(grads.wh == solo_grads.wh, "packed wh grads differ")?;
                    testkit::prop::holds(grads.b == solo_grads.b, "packed b grads differ")?;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn memory_carries_information_forward() {
        // A distinctive first input must change the last hidden state.
        let layer = tiny_layer(3);
        let mut a = Matrix::zeros(5, 3);
        a.set_row(0, &[1.0, 1.0, 1.0]);
        let b = Matrix::zeros(5, 3);
        let ha = layer.forward(&a);
        let hb = layer.forward(&b);
        let last = ha.h.rows() - 1;
        let diff: f32 =
            ha.h.row(last)
                .iter()
                .zip(hb.h.row(last))
                .map(|(x, y)| (x - y).abs())
                .sum();
        assert!(
            diff > 1e-4,
            "first input had no effect on last state: {}",
            diff
        );
    }

    #[test]
    fn param_count_matches_shapes() {
        let layer = tiny_layer(0);
        assert_eq!(layer.param_count(), 16 * 3 + 16 * 4 + 16);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let layer = tiny_layer(0);
        let xs = Matrix::zeros(2, 5);
        let _ = layer.forward(&xs);
    }
}
