//! Histogram-based regression trees — the weak learner inside the gradient
//! boosting machine (`gbdt`), mirroring LightGBM's histogram algorithm that
//! the paper uses for `Mgap`.

/// Maps raw feature values to small integer bins using quantile edges.
#[derive(Debug, Clone)]
pub struct BinMapper {
    /// Per-feature sorted upper bin edges; value v falls in the first bin
    /// whose edge is >= v.
    edges: Vec<Vec<f32>>,
    max_bins: usize,
}

impl BinMapper {
    /// Learns up to `max_bins` quantile bins per feature.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty/ragged or `max_bins < 2`.
    pub fn fit(rows: &[Vec<f32>], max_bins: usize) -> Self {
        assert!(!rows.is_empty(), "cannot fit bins on empty data");
        assert!(max_bins >= 2, "need at least two bins");
        let width = rows[0].len();
        let mut edges = Vec::with_capacity(width);
        for j in 0..width {
            let mut vals: Vec<f32> = rows
                .iter()
                .map(|r| {
                    assert_eq!(r.len(), width, "ragged rows");
                    r[j]
                })
                .collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
            vals.dedup();
            let mut feat_edges = Vec::new();
            if vals.len() <= max_bins {
                // One bin per distinct value.
                feat_edges.extend(vals.iter().copied());
            } else {
                for b in 1..=max_bins {
                    let q = b as f64 / max_bins as f64;
                    let idx = ((vals.len() - 1) as f64 * q).round() as usize;
                    feat_edges.push(vals[idx]);
                }
                feat_edges.dedup();
            }
            edges.push(feat_edges);
        }
        BinMapper { edges, max_bins }
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins used for feature `j`.
    pub fn bins(&self, j: usize) -> usize {
        self.edges[j].len() + 1
    }

    /// Configured maximum bin count.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Bins one value of feature `j`.
    pub fn bin_value(&self, j: usize, v: f32) -> u16 {
        let e = &self.edges[j];
        // First edge >= v; values above all edges land in the last bin.
        // Edges are finite by construction (fit filters non-finite
        // candidates); an unordered comparison can only mean `v` is NaN, in
        // which case every probe compares Less and `v` degrades
        // deterministically into the last bin instead of panicking.
        match e.binary_search_by(|probe| probe.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i as u16,
            Err(i) => i as u16,
        }
    }

    /// Bins a full row.
    pub fn bin_row(&self, row: &[f32]) -> Vec<u16> {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| self.bin_value(j, v))
            .collect()
    }
}

/// Node of a binned regression tree.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        /// Go left when `bin <= threshold_bin`.
        threshold_bin: u16,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

/// A depth-bounded regression tree fit to gradient/hessian targets.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Hyper-parameters for tree growth.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// L2 regularization on leaf values.
    pub lambda: f32,
    /// Minimum gain to accept a split.
    pub min_gain: f32,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 5,
            min_samples_split: 10,
            lambda: 1.0,
            min_gain: 1e-6,
        }
    }
}

impl RegressionTree {
    /// Fits a tree minimizing the second-order objective on (grad, hess):
    /// leaf value = `-ΣG / (ΣH + λ)`, split gain per the usual GBDT formula.
    ///
    /// `binned`: row-major binned features; `indices`: rows to use.
    pub fn fit(
        binned: &[Vec<u16>],
        mapper: &BinMapper,
        grads: &[f32],
        hess: &[f32],
        indices: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert_eq!(binned.len(), grads.len(), "grads length mismatch");
        assert_eq!(binned.len(), hess.len(), "hess length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(binned, mapper, grads, hess, indices.to_vec(), 0, params);
        tree
    }

    fn leaf_value(grads_sum: f64, hess_sum: f64, lambda: f32) -> f32 {
        (-grads_sum / (hess_sum + lambda as f64)) as f32
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        binned: &[Vec<u16>],
        mapper: &BinMapper,
        grads: &[f32],
        hess: &[f32],
        indices: Vec<usize>,
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let g_sum: f64 = indices.iter().map(|&i| grads[i] as f64).sum();
        let h_sum: f64 = indices.iter().map(|&i| hess[i] as f64).sum();

        let make_leaf = |nodes: &mut Vec<Node>| {
            let id = nodes.len();
            nodes.push(Node::Leaf {
                value: Self::leaf_value(g_sum, h_sum, params.lambda),
            });
            id
        };

        if depth >= params.max_depth || indices.len() < params.min_samples_split {
            return make_leaf(&mut self.nodes);
        }

        // Best split search: histogram building and bin scans are
        // independent per feature, so they fan out over the worker pool.
        // Candidates come back in feature order and the fold below keeps the
        // ascending-feature, strictly-greater tie-breaking of the serial
        // loop, so the chosen split is identical at any thread count.
        let lambda = params.lambda as f64;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let features: Vec<usize> = (0..mapper.width()).collect();
        let indices_ref = &indices;
        let candidates = crate::par::par_map(&features, |_, &j| {
            let bins = mapper.bins(j);
            if bins < 2 {
                return None;
            }
            let mut hist_g = vec![0.0f64; bins];
            let mut hist_h = vec![0.0f64; bins];
            let mut hist_n = vec![0usize; bins];
            for &i in indices_ref {
                let b = binned[i][j] as usize;
                hist_g[b] += grads[i] as f64;
                hist_h[b] += hess[i] as f64;
                hist_n[b] += 1;
            }
            let mut gl = 0.0f64;
            let mut hl = 0.0f64;
            let mut nl = 0usize;
            let mut feat_best: Option<(u16, f64)> = None;
            for b in 0..bins - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                nl += hist_n[b];
                let nr = indices_ref.len() - nl;
                if nl == 0 || nr == 0 {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                let gain = gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score;
                if gain > params.min_gain as f64 && feat_best.is_none_or(|(_, bg)| gain > bg) {
                    feat_best = Some((b as u16, gain));
                }
            }
            feat_best
        });
        let mut best: Option<(usize, u16, f64)> = None;
        for (j, cand) in candidates.into_iter().enumerate() {
            if let Some((b, gain)) = cand {
                if best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((j, b, gain));
                }
            }
        }

        let Some((feature, threshold_bin, _)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| binned[i][feature] <= threshold_bin);

        let id = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold_bin,
            left: usize::MAX,
            right: usize::MAX,
        });
        let left = self.grow(binned, mapper, grads, hess, left_idx, depth + 1, params);
        let right = self.grow(binned, mapper, grads, hess, right_idx, depth + 1, params);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[id]
        {
            *l = left;
            *r = right;
        }
        id
    }

    /// Evaluates the tree on one binned row.
    pub fn predict_binned(&self, row: &[u16]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold_bin,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold_bin {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Sentinel in [`NodeArena::feature`] marking a leaf node.
const ARENA_LEAF: u32 = u32::MAX;

/// Contiguous structure-of-arrays flattening of one or more
/// [`RegressionTree`]s for cache-friendly inference.
///
/// The pointer-walk [`RegressionTree::predict_binned`] chases boxed enum
/// nodes scattered across per-tree allocations; an ensemble evaluation
/// (e.g. `Mgap`'s 40-tree logit on the streaming hot path) touches every
/// tree for every row. The arena packs all nodes of all trees into parallel
/// arrays — split feature, threshold bin, child indices, leaf value — so a
/// traversal is index arithmetic over a handful of dense buffers that stay
/// resident in cache across rows.
///
/// Scores are **bitwise identical** to the pointer walk: leaf values are
/// copied verbatim, the descend rule (`bin <= threshold_bin` goes left) is
/// unchanged, and evaluation order is untouched. `ml::gbdt` pins that
/// equality with a testkit property against the enum-walk reference.
#[derive(Debug, Clone, Default)]
pub struct NodeArena {
    /// Split feature per node; [`ARENA_LEAF`] marks a leaf.
    feature: Vec<u32>,
    /// Go left when `bin <= threshold_bin` (unused for leaves).
    threshold_bin: Vec<u16>,
    /// Arena index of the left child (unused for leaves).
    left: Vec<u32>,
    /// Arena index of the right child (unused for leaves).
    right: Vec<u32>,
    /// Leaf value (unused for splits).
    value: Vec<f32>,
    /// Arena index of each pushed tree's root.
    roots: Vec<u32>,
}

impl NodeArena {
    /// An empty arena.
    pub fn new() -> Self {
        NodeArena::default()
    }

    /// Appends every node of `tree`, relocating child indices by the
    /// current base offset, and returns the tree's arena id. The tree's
    /// root is its node 0 (growth pushes it first).
    pub fn push_tree(&mut self, tree: &RegressionTree) -> usize {
        // u32 indices halve the child-pointer footprint; a depth-bounded
        // ensemble is thousands of nodes, nowhere near the 4 G ceiling.
        debug_assert!(self.feature.len() + tree.nodes.len() < u32::MAX as usize);
        let base = self.feature.len() as u32;
        for node in &tree.nodes {
            match node {
                Node::Split {
                    feature,
                    threshold_bin,
                    left,
                    right,
                } => {
                    self.feature.push(*feature as u32);
                    self.threshold_bin.push(*threshold_bin);
                    self.left.push(base + *left as u32);
                    self.right.push(base + *right as u32);
                    self.value.push(0.0);
                }
                Node::Leaf { value } => {
                    self.feature.push(ARENA_LEAF);
                    self.threshold_bin.push(0);
                    self.left.push(0);
                    self.right.push(0);
                    self.value.push(*value);
                }
            }
        }
        self.roots.push(base);
        self.roots.len() - 1
    }

    /// Number of flattened trees.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all flattened trees.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Evaluates flattened tree `tree` on one binned row — the arena
    /// counterpart of [`RegressionTree::predict_binned`], bitwise equal.
    pub fn predict_binned(&self, tree: usize, row: &[u16]) -> f32 {
        let mut n = self.roots[tree] as usize;
        loop {
            let f = self.feature[n];
            if f == ARENA_LEAF {
                return self.value[n];
            }
            n = if row[f as usize] <= self.threshold_bin[n] {
                self.left[n] as usize
            } else {
                self.right[n] as usize
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_data() -> (Vec<Vec<f32>>, Vec<f32>) {
        // Target is +1 when x0 > 0.5, else -1 (a single clean split).
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..40 {
            let x0 = (i % 10) as f32 / 10.0;
            let x1 = (i % 7) as f32 / 7.0;
            rows.push(vec![x0, x1]);
            targets.push(if x0 > 0.5 { 1.0 } else { -1.0 });
        }
        (rows, targets)
    }

    #[test]
    fn bin_mapper_round_trips_small_domains() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let m = BinMapper::fit(&rows, 16);
        // Each distinct value should occupy its own bin, in order.
        let b1 = m.bin_value(0, 1.0);
        let b2 = m.bin_value(0, 2.0);
        let b3 = m.bin_value(0, 3.0);
        assert!(b1 < b2 && b2 < b3, "{} {} {}", b1, b2, b3);
        // Out-of-range values clamp to the extreme bins.
        assert!(m.bin_value(0, -5.0) <= b1);
        assert!(m.bin_value(0, 99.0) >= b3);
    }

    #[test]
    fn bin_mapper_is_monotone() {
        let rows: Vec<Vec<f32>> = (0..1000).map(|i| vec![(i as f32).sin() * 100.0]).collect();
        let m = BinMapper::fit(&rows, 64);
        let mut vals: Vec<f32> = rows.iter().map(|r| r[0]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u16;
        for v in vals {
            let b = m.bin_value(0, v);
            assert!(b >= prev, "binning not monotone");
            prev = b;
        }
    }

    #[test]
    fn tree_fits_a_single_split() {
        let (rows, targets) = xor_like_data();
        let mapper = BinMapper::fit(&rows, 32);
        let binned: Vec<Vec<u16>> = rows.iter().map(|r| mapper.bin_row(r)).collect();
        // Squared loss: grad = pred - target with pred=0, hess = 1.
        let grads: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let hess = vec![1.0f32; targets.len()];
        let idx: Vec<usize> = (0..rows.len()).collect();
        let params = TreeParams {
            max_depth: 3,
            min_samples_split: 2,
            lambda: 0.0,
            min_gain: 1e-9,
        };
        let tree = RegressionTree::fit(&binned, &mapper, &grads, &hess, &idx, &params);
        for (row, &t) in binned.iter().zip(&targets) {
            let p = tree.predict_binned(row);
            assert!((p - t).abs() < 0.2, "pred {} target {}", p, t);
        }
    }

    #[test]
    fn arena_walk_matches_pointer_walk_bitwise() {
        let (rows, targets) = xor_like_data();
        let mapper = BinMapper::fit(&rows, 32);
        let binned: Vec<Vec<u16>> = rows.iter().map(|r| mapper.bin_row(r)).collect();
        let hess = vec![1.0f32; targets.len()];
        let idx: Vec<usize> = (0..rows.len()).collect();
        let params = TreeParams {
            max_depth: 4,
            min_samples_split: 2,
            lambda: 0.5,
            min_gain: 1e-9,
        };
        // Two differently-shaped trees in one arena exercise the base-offset
        // relocation of child indices.
        let grads_a: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let grads_b: Vec<f32> = targets.iter().map(|&t| t * 0.3 - 0.1).collect();
        let tree_a = RegressionTree::fit(&binned, &mapper, &grads_a, &hess, &idx, &params);
        let tree_b = RegressionTree::fit(&binned, &mapper, &grads_b, &hess, &idx, &params);
        let mut arena = NodeArena::new();
        assert_eq!(arena.push_tree(&tree_a), 0);
        assert_eq!(arena.push_tree(&tree_b), 1);
        assert_eq!(arena.tree_count(), 2);
        assert_eq!(
            arena.node_count(),
            tree_a.node_count() + tree_b.node_count()
        );
        for row in &binned {
            assert_eq!(arena.predict_binned(0, row), tree_a.predict_binned(row));
            assert_eq!(arena.predict_binned(1, row), tree_b.predict_binned(row));
        }
    }

    #[test]
    fn depth_zero_gives_single_leaf_with_mean() {
        let (rows, targets) = xor_like_data();
        let mapper = BinMapper::fit(&rows, 32);
        let binned: Vec<Vec<u16>> = rows.iter().map(|r| mapper.bin_row(r)).collect();
        let grads: Vec<f32> = targets.iter().map(|&t| -t).collect();
        let hess = vec![1.0f32; targets.len()];
        let idx: Vec<usize> = (0..rows.len()).collect();
        let params = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&binned, &mapper, &grads, &hess, &idx, &params);
        assert_eq!(tree.node_count(), 1);
        let mean: f32 = targets.iter().sum::<f32>() / targets.len() as f32;
        assert!((tree.predict_binned(&binned[0]) - mean).abs() < 1e-4);
    }
}
