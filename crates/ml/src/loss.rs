//! Softmax cross-entropy losses, including the paper's two customizations:
//!
//! * **weighted** cross-entropy (Mlong, §IV-B: minority-class loss is
//!   amplified by a constant to compensate for the imbalance between `conv`
//!   samples and everything else), and
//! * **masked** cross-entropy (Mop, §IV-B: losses from samples irrelevant to
//!   `OtherOp` are neglected entirely while the forward pass still consumes
//!   them).

use crate::activation::softmax_into;

/// Result of a softmax cross-entropy evaluation over one timestep.
#[derive(Debug, Clone)]
pub struct LossEval {
    /// Scalar loss contribution (already weighted; zero when masked out).
    pub loss: f32,
    /// Gradient of the loss with respect to the logits.
    pub dlogits: Vec<f32>,
    /// Softmax probabilities (useful for voting / confidence reporting).
    pub probs: Vec<f32>,
}

/// Computes weighted softmax cross-entropy for a single sample.
///
/// `class_weights` amplifies each class's loss; use all-ones for standard
/// cross-entropy. When `masked` is true the sample contributes neither loss
/// nor gradient (but the probabilities are still returned).
///
/// # Panics
///
/// Panics if `target >= logits.len()` or the weight vector length mismatches.
pub fn softmax_cross_entropy(
    logits: &[f32],
    target: usize,
    class_weights: &[f32],
    masked: bool,
) -> LossEval {
    let mut probs = Vec::new();
    let mut dlogits = vec![0.0; logits.len()];
    let loss = softmax_cross_entropy_into(
        logits,
        target,
        class_weights,
        masked,
        &mut dlogits,
        &mut probs,
    );
    LossEval {
        loss,
        dlogits,
        probs,
    }
}

/// In-place variant of [`softmax_cross_entropy`]: writes the logit gradient
/// into `dlogits_out` (which must have the logits' length) and the softmax
/// probabilities into `probs`, returning the loss. Bitwise identical to the
/// allocating path; used by the allocation-free training workspace.
///
/// # Panics
///
/// Panics if `target >= logits.len()`, the weight vector length mismatches,
/// or `dlogits_out.len() != logits.len()`.
pub fn softmax_cross_entropy_into(
    logits: &[f32],
    target: usize,
    class_weights: &[f32],
    masked: bool,
    dlogits_out: &mut [f32],
    probs: &mut Vec<f32>,
) -> f32 {
    assert!(
        target < logits.len(),
        "target class {} out of range {}",
        target,
        logits.len()
    );
    assert_eq!(
        class_weights.len(),
        logits.len(),
        "class weight length mismatch"
    );
    assert_eq!(dlogits_out.len(), logits.len(), "dlogits length mismatch");
    softmax_into(logits, probs);
    if masked {
        dlogits_out.fill(0.0);
        return 0.0;
    }
    let w = class_weights[target];
    let p = probs[target].max(1e-12);
    let loss = -w * p.ln();
    dlogits_out.copy_from_slice(probs);
    dlogits_out[target] -= 1.0;
    for d in dlogits_out.iter_mut() {
        *d *= w;
    }
    loss
}

/// Uniform class weights of the given arity.
pub fn uniform_weights(classes: usize) -> Vec<f32> {
    vec![1.0; classes]
}

/// Builds class weights inversely proportional to class frequency, normalized
/// so the mean weight is 1. This is the practical recipe behind the paper's
/// "loss is amplified by a constant if the sample is from the minor class".
///
/// Classes that never occur get weight 1.
pub fn inverse_frequency_weights(
    labels: impl IntoIterator<Item = usize>,
    classes: usize,
) -> Vec<f32> {
    let mut counts = vec![0usize; classes];
    let mut total = 0usize;
    for l in labels {
        assert!(l < classes, "label {} out of range {}", l, classes);
        counts[l] += 1;
        total += 1;
    }
    if total == 0 {
        return uniform_weights(classes);
    }
    let mut weights: Vec<f32> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                1.0
            } else {
                total as f32 / (classes as f32 * c as f32)
            }
        })
        .collect();
    // Normalize to mean 1 over the classes that occur, leaving the scale of
    // the learning rate untouched.
    let mean: f32 = weights.iter().sum::<f32>() / classes as f32;
    if mean > 0.0 {
        for w in weights.iter_mut() {
            *w /= mean;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = [0.3f32, -1.2, 2.0];
        let w = [1.0f32, 2.0, 0.5];
        let target = 1;
        let eval = softmax_cross_entropy(&logits, target, &w, false);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let fp = softmax_cross_entropy(&lp, target, &w, false).loss;
            let fm = softmax_cross_entropy(&lm, target, &w, false).loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (eval.dlogits[i] - fd).abs() < 1e-3,
                "component {}: analytic {} vs fd {}",
                i,
                eval.dlogits[i],
                fd
            );
        }
    }

    #[test]
    fn masked_sample_contributes_nothing() {
        let eval = softmax_cross_entropy(&[1.0, 2.0], 0, &[1.0, 1.0], true);
        assert_eq!(eval.loss, 0.0);
        assert!(eval.dlogits.iter().all(|&d| d == 0.0));
        assert!((eval.probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn correct_confident_prediction_has_small_loss() {
        let good = softmax_cross_entropy(&[10.0, 0.0], 0, &[1.0, 1.0], false);
        let bad = softmax_cross_entropy(&[0.0, 10.0], 0, &[1.0, 1.0], false);
        assert!(good.loss < 0.01);
        assert!(bad.loss > 5.0);
    }

    #[test]
    fn class_weight_scales_loss() {
        let base = softmax_cross_entropy(&[0.0, 1.0], 0, &[1.0, 1.0], false);
        let amp = softmax_cross_entropy(&[0.0, 1.0], 0, &[3.0, 1.0], false);
        assert!((amp.loss - 3.0 * base.loss).abs() < 1e-5);
    }

    #[test]
    fn inverse_frequency_upweights_minority() {
        // 90 of class 0, 10 of class 1.
        let labels = std::iter::repeat_n(0, 90).chain(std::iter::repeat_n(1, 10));
        let w = inverse_frequency_weights(labels, 2);
        assert!(w[1] > w[0], "minority class should be amplified: {:?}", w);
        assert!((w.iter().sum::<f32>() / 2.0 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_frequency_handles_absent_class_and_empty() {
        let w = inverse_frequency_weights([0usize, 0, 0], 3);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|v| v.is_finite() && *v > 0.0));
        let w = inverse_frequency_weights(std::iter::empty(), 4);
        assert_eq!(w, vec![1.0; 4]);
    }
}
