//! Scalar activation functions and their derivatives, plus a numerically
//! stable softmax.

/// Logistic sigmoid `1 / (1 + e^-x)`.
///
/// # Examples
///
/// ```
/// assert!((ml::activation::sigmoid(0.0) - 0.5).abs() < 1e-6);
/// ```
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Rearranged to avoid overflow of exp for very negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed in terms of its output `y = sigmoid(x)`.
pub fn sigmoid_deriv_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Hyperbolic tangent.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of its output `y = tanh(x)`.
pub fn tanh_deriv_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU with respect to its input.
pub fn relu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Numerically stable softmax over a slice, written into a fresh `Vec`.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    softmax_into(logits, &mut out);
    out
}

/// In-place variant of [`softmax`]: clears `out` and writes the
/// probabilities into it, reusing its allocation. Bitwise identical to
/// [`softmax`] (same operations in the same order).
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax_into(logits: &[f32], out: &mut Vec<f32>) {
    assert!(!logits.is_empty(), "softmax over empty slice");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    out.clear();
    out.extend(logits.iter().map(|&l| (l - max).exp()));
    let sum: f32 = out.iter().sum();
    for v in out.iter_mut() {
        *v /= sum;
    }
}

/// Index of the maximum element (first occurrence).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax over empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-3.0f32, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 999.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[1] > p[0] && p[0] > p[2]);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let p = softmax(&[2.0, 2.0, 2.0, 2.0]);
        for v in p {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for x in [-1.5f32, -0.2, 0.0, 0.7, 2.1] {
            let fd = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((sigmoid_deriv_from_output(sigmoid(x)) - fd).abs() < 1e-3);
            let fd = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((tanh_deriv_from_output(tanh(x)) - fd).abs() < 1e-3);
        }
        assert_eq!(relu_deriv(1.0), 1.0);
        assert_eq!(relu_deriv(-1.0), 0.0);
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
    }
}
