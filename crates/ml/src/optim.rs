//! First-order optimizers used to train the inference models (Adam) and
//! mirrored in the victim framework (`dnn-sim` lowers GD/Adam/Adagrad apply
//! ops to kernels; the math here is the reference semantics).

/// A gradient-descent style parameter updater over flat `f32` buffers.
///
/// Implementations keep whatever per-parameter state they need (`Adam` keeps
/// first/second moments, `Adagrad` an accumulator); one instance must be
/// dedicated to one parameter buffer of fixed length.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step: `params -= f(grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or the length differs from the
    /// one the optimizer was constructed with.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent (the paper's "GD" optimizer).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD updater with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd buffer length mismatch");
        for (p, &g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates an Adam updater for a parameter buffer of length `len`.
    pub fn new(len: usize, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "adam buffer length mismatch");
        assert_eq!(params.len(), self.m.len(), "adam state length mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adagrad with per-parameter accumulated squared gradients.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
}

impl Adagrad {
    /// Creates an Adagrad updater for a parameter buffer of length `len`.
    pub fn new(len: usize, lr: f32) -> Self {
        Adagrad {
            lr,
            eps: 1e-10,
            accum: vec![0.0; len],
        }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "adagrad buffer length mismatch");
        assert_eq!(
            params.len(),
            self.accum.len(),
            "adagrad state length mismatch"
        );
        for i in 0..params.len() {
            let g = grads[i];
            self.accum[i] += g * g;
            params[i] -= self.lr * g / (self.accum[i].sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Clips the gradient buffer to a global L2 norm of at most `max_norm`.
///
/// Returns the pre-clip norm. BPTT through long traces makes this necessary.
pub fn clip_global_norm(grads: &mut [&mut [f32]], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for g in grads.iter() {
        for &v in g.iter() {
            sq += (v as f64) * (v as f64);
        }
    }
    let norm = (sq as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.iter_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and checks convergence.
    fn converges(opt: &mut dyn Optimizer, start: f32, steps: usize) -> f32 {
        let mut x = [start];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = converges(&mut opt, 0.0, 200);
        assert!((x - 3.0).abs() < 1e-3, "got {}", x);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(1, 0.1);
        let x = converges(&mut opt, 0.0, 500);
        assert!((x - 3.0).abs() < 1e-2, "got {}", x);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let mut opt = Adagrad::new(1, 1.0);
        let x = converges(&mut opt, 0.0, 500);
        assert!((x - 3.0).abs() < 1e-2, "got {}", x);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut opt = Adam::new(1, 0.01);
        let mut x = [0.0f32];
        opt.step(&mut x, &[5.0]);
        assert!((x[0].abs() - 0.01).abs() < 1e-4, "got {}", x[0]);
    }

    #[test]
    fn clip_reduces_large_norm_and_keeps_small() {
        let mut a = vec![3.0f32, 4.0];
        {
            let mut bufs: Vec<&mut [f32]> = vec![&mut a];
            let pre = clip_global_norm(&mut bufs, 1.0);
            assert!((pre - 5.0).abs() < 1e-5);
        }
        let norm: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);

        let mut b = vec![0.3f32, 0.4];
        let mut bufs: Vec<&mut [f32]> = vec![&mut b];
        clip_global_norm(&mut bufs, 1.0);
        assert_eq!(b, vec![0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_buffers_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0f32; 2];
        opt.step(&mut p, &[1.0]);
    }
}
