//! Property-based tests for the ML substrate's core invariants.

use ml::activation::{argmax, softmax};
use ml::gbdt::{GbdtBinaryClassifier, GbdtConfig};
use ml::loss::{inverse_frequency_weights, softmax_cross_entropy};
use ml::lstm::LstmLayer;
use ml::matrix::Matrix;
use ml::scale::MinMaxScaler;
use ml::tree::BinMapper;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e4f32..1e4, len)
}

/// Builds an `r x c` matrix with entries drawn from the given RNG.
fn random_matrix(r: usize, c: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f32> = (0..r * c).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let rows: Vec<&[f32]> = data.chunks(c).collect();
    Matrix::from_rows(&rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50f32..50.0, 1..16)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // argmax of probabilities equals argmax of logits.
        prop_assert_eq!(argmax(&p), argmax(&logits));
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero(
        logits in prop::collection::vec(-10f32..10.0, 2..8),
        target_raw in 0usize..8,
    ) {
        let target = target_raw % logits.len();
        let w = vec![1.0; logits.len()];
        let eval = softmax_cross_entropy(&logits, target, &w, false);
        let g: f32 = eval.dlogits.iter().sum();
        // Softmax CE gradient components always sum to zero.
        prop_assert!(g.abs() < 1e-4, "gradient sum {}", g);
        prop_assert!(eval.loss >= 0.0);
    }

    #[test]
    fn inverse_frequency_weights_are_positive_and_mean_one(
        labels in prop::collection::vec(0usize..5, 1..200)
    ) {
        let w = inverse_frequency_weights(labels.iter().copied(), 5);
        prop_assert_eq!(w.len(), 5);
        prop_assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
        let mean: f32 = w.iter().sum::<f32>() / 5.0;
        prop_assert!((mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a_data in finite_vec(6),
        b_data in finite_vec(6),
        c_data in finite_vec(6),
    ) {
        let a = Matrix::from_rows(&[&a_data[..3], &a_data[3..]]);
        let b = Matrix::from_rows(&[&b_data[..2], &b_data[2..4], &b_data[4..]]);
        let c = Matrix::from_rows(&[&c_data[..2], &c_data[2..4], &c_data[4..]]);
        // a * (b + c) == a*b + a*c (within fp tolerance).
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs().max(y.abs())));
        }
    }

    #[test]
    fn transpose_is_involutive(data in finite_vec(12)) {
        let m = Matrix::from_rows(&[&data[..4], &data[4..8], &data[8..]]);
        let tt = m.transposed().transposed();
        prop_assert_eq!(m, tt);
    }

    #[test]
    fn minmax_scaler_output_is_unit_bounded(
        rows in prop::collection::vec(prop::collection::vec(-1e6f32..1e6, 4), 1..40),
        probe in prop::collection::vec(-2e6f32..2e6, 4),
    ) {
        let s = MinMaxScaler::fit(&rows);
        for r in &rows {
            let t = s.transform_row(r);
            prop_assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Out-of-range probes clamp, never escape [0, 1].
        let t = s.transform_row(&probe);
        prop_assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn bin_mapper_is_monotone_for_any_data(
        mut vals in prop::collection::vec(-1e5f32..1e5, 2..200)
    ) {
        let rows: Vec<Vec<f32>> = vals.iter().map(|&v| vec![v]).collect();
        let mapper = BinMapper::fit(&rows, 32);
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u16;
        for v in vals {
            let b = mapper.bin_value(0, v);
            prop_assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn gbdt_probabilities_are_probabilities(
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..60).map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]).collect();
        let labels: Vec<bool> = rows.iter().map(|r| r[0] > 0.0).collect();
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Ok(()); // degenerate single-class draw
        }
        let cfg = GbdtConfig { rounds: 5, ..GbdtConfig::default() };
        let model = GbdtBinaryClassifier::fit(&rows, &labels, &cfg);
        for r in &rows {
            let p = model.predict_proba(r);
            prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
        }
    }

    // The fast GEMM paths promise *bitwise* equality with their reference
    // implementations, independent of worker-pool size — exact `==` on the
    // raw f32 buffers, no tolerance.

    #[test]
    fn blocked_matmul_is_bitwise_equal_to_naive(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        threads in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let fast = ml::par::with_threads(threads, || a.matmul(&b));
        prop_assert_eq!(fast, a.matmul_naive(&b));
    }

    #[test]
    fn blocked_t_matmul_is_bitwise_equal_to_naive(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        threads in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(k, m, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let fast = ml::par::with_threads(threads, || a.t_matmul(&b));
        prop_assert_eq!(fast, a.t_matmul_naive(&b));
    }

    #[test]
    fn fused_lstm_step_is_bitwise_equal_to_naive(
        seed in 0u64..500,
        t_len in 1usize..16,
        input in 1usize..8,
        hidden in 1usize..8,
        threads in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = LstmLayer::new(input, hidden, &mut rng);
        let xs = random_matrix(t_len, input, &mut rng);
        let dh = random_matrix(t_len, hidden, &mut rng);

        let (cache, grads, dx) = ml::par::with_threads(threads, || {
            let cache = layer.forward(&xs);
            let (grads, dx) = layer.backward(&cache, &dh);
            (cache, grads, dx)
        });
        let ref_cache = layer.forward_naive(&xs);
        let (ref_grads, ref_dx) = layer.backward_naive(&ref_cache, &dh);

        prop_assert_eq!(cache.h, ref_cache.h);
        prop_assert_eq!(grads.wx, ref_grads.wx);
        prop_assert_eq!(grads.wh, ref_grads.wh);
        prop_assert_eq!(grads.b, ref_grads.b);
        prop_assert_eq!(dx, ref_dx);
    }
}
