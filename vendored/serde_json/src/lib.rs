//! Std-only stand-in for the `serde_json` API surface used by this
//! workspace: serialize any `serde::Serialize` to JSON text, and parse JSON
//! text into a [`Value`] tree.
//!
//! Unlike upstream, `from_str` is not generic — nothing in the workspace
//! deserializes into typed data, so it always yields a [`Value`].

use std::fmt;

pub use serde::Value;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().render_compact(&mut out);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().render_pretty(&mut out, 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut parser = Parser { bytes, pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // stand-in; no workspace string needs them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let v = Value::Object(vec![
            ("name".to_owned(), Value::String("conv".to_owned())),
            ("ts".to_owned(), Value::Number(5.0)),
            (
                "flags".to_owned(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_numbers_strings_escapes() {
        let v = from_str(r#"{"a": -1.5e2, "b": "x\ny\"z", "c": [1, 2.25]}"#).unwrap();
        assert_eq!(v["a"], -150.0);
        assert_eq!(v["b"], "x\ny\"z");
        assert_eq!(v["c"][1], 2.25);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let v = from_str(r#"{"a": 1}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"]["nested"].is_null());
    }
}
