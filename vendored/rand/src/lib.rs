//! Std-only stand-in for the `rand` 0.8 API surface used by this workspace.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with
//! `gen_range`/`gen_bool`, and [`seq::SliceRandom`] with `shuffle`/`choose`.
//! The numeric stream differs from upstream `rand`; every caller in this
//! workspace only relies on seeded determinism and statistical uniformity.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng` the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ with SplitMix64 seeding.
    /// Not the upstream `StdRng` algorithm, but the same contract every call
    /// site in this workspace relies on: seeded, fast, well distributed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    /// Shuffling and random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&g));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
