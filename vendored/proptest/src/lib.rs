//! Std-only stand-in for the `proptest` API surface used by this workspace.
//!
//! Random-input testing without shrinking: each `proptest!` test runs
//! `ProptestConfig::cases` iterations with inputs drawn from the given
//! strategies, seeded deterministically from the test name so failures
//! reproduce run-to-run. `prop_assert!`/`prop_assert_eq!` panic like the
//! std asserts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Error type for test-case bodies (`return Ok(())` support); never
/// constructed by the asserts, which panic instead of shrinking.
#[derive(Debug)]
pub struct TestCaseError;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one `proptest!` test: a deterministic RNG (seeded from the test
/// name via FNV-1a) plus the case count.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Builds the runner for a named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: TestRng::seed_from_u64(h),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of T" (`any::<T>()`); implemented for the types
/// the workspace draws this way.
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over all values of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.gen_range(0..self.arms.len());
        self.arms[k].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// The size argument of [`collection::vec`]: an exact length or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};

    /// Vec of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                use rand::Rng;
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests. Each `fn name(pat in strategy, …) { body }`
/// becomes a test running `cases` random iterations; the body may
/// `return Ok(())` to skip degenerate draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($config) $($rest)* }
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for _ in 0..runner.cases() {
                #[allow(unused_mut)]
                let ($($parm,)+) = ($($crate::Strategy::generate(&($strategy), runner.rng()),)+);
                #[allow(unused_mut)]
                let mut case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                case().unwrap();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    //! One-stop import for tests: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };

    /// Namespace mirror so `prop::collection::vec` works, as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 0usize..10,
            v in prop::collection::vec(-1.0f32..1.0, 2..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (-1.0..1.0).contains(&e)));
            let _ = flag;
        }

        #[test]
        fn oneof_map_and_early_return(
            choice in prop_oneof![
                (0u8..3, 0.0f64..1.0).prop_map(|(a, b)| (a as usize, b)),
                Just((9usize, 0.5f64)),
            ],
        ) {
            let (a, b) = choice;
            if a == 9 {
                prop_assert_eq!(b, 0.5);
                return Ok(());
            }
            prop_assert!(a < 3, "a = {}", a);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let mut r1 = TestRunner::new(ProptestConfig::with_cases(4), "abc");
        let mut r2 = TestRunner::new(ProptestConfig::with_cases(4), "abc");
        let s = crate::collection::vec(0u64..1000, 3..9);
        for _ in 0..4 {
            assert_eq!(
                Strategy::generate(&s, r1.rng()),
                Strategy::generate(&s, r2.rng())
            );
        }
    }
}
