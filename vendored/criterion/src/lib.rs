//! Std-only stand-in for the `criterion` API surface used by this
//! workspace's benches: `Criterion::default().sample_size(n)`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is wall-clock: a calibration pass sizes each sample at
//! roughly `TARGET_SAMPLE_NANOS`, then `sample_size` samples run and the
//! per-iteration minimum / median / mean are printed. No plots, no state
//! files. When cargo passes `--test` (from `cargo test --benches`), each
//! bench runs a single iteration so the target merely smoke-checks.

use std::time::Instant;

/// Aim for samples of about this long so short benches still measure well.
const TARGET_SAMPLE_NANOS: u128 = 10_000_000;

/// Opaque value barrier (re-exported like upstream).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hands the benchmark closure to the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Runs `f` for the configured iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Measures `f` and prints per-iteration statistics.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.smoke_test {
            let mut b = Bencher {
                iters: 1,
                elapsed_nanos: 0,
            };
            f(&mut b);
            println!("{name}: smoke test ok");
            return self;
        }

        // Calibration: one iteration to size the per-sample batch.
        let mut b = Bencher {
            iters: 1,
            elapsed_nanos: 0,
        };
        f(&mut b);
        let est = b.elapsed_nanos.max(1);
        let iters = (TARGET_SAMPLE_NANOS / est).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<u128> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed_nanos: 0,
                };
                f(&mut b);
                b.elapsed_nanos / u128::from(iters)
            })
            .collect();
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<u128>() / per_iter.len() as u128;
        println!(
            "{name}: min {} / median {} / mean {}  ({} samples x {} iters)",
            fmt_nanos(min),
            fmt_nanos(median),
            fmt_nanos(mean),
            self.sample_size,
            iters,
        );
        self
    }
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, …)` or
/// the `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        // Force measurement mode regardless of harness args.
        c.smoke_test = false;
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                let _: () = runs += 1;
                black_box(())
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn formats_scales() {
        assert_eq!(fmt_nanos(5), "5 ns");
        assert_eq!(fmt_nanos(5_000), "5.000 us");
        assert_eq!(fmt_nanos(5_000_000), "5.000 ms");
        assert_eq!(fmt_nanos(5_000_000_000), "5.000 s");
    }
}
