//! Derive macros for the vendored `serde` stand-in, written against
//! `proc_macro` alone (no `syn`/`quote` — the container has no registry).
//!
//! `#[derive(Serialize)]` expands to a `to_json_value` impl that mirrors
//! serde_json's default representation: named structs become objects,
//! newtype structs are transparent, enums are externally tagged (unit
//! variants as bare strings). Field-level `#[serde(rename = "…")]` is
//! honoured. Generic types are rejected with a compile error — the
//! workspace has none.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    /// `(field ident, json key)` pairs.
    Named(Vec<(String, String)>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!(\"{msg}\");").parse().unwrap()
}

fn is_punct(tt: Option<&TokenTree>, c: char) -> bool {
    matches!(tt, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(tt: Option<&TokenTree>, word: &str) -> bool {
    matches!(tt, Some(TokenTree::Ident(id)) if id.to_string() == word)
}

/// Extracts `rename` from a `serde(rename = "…")` attribute body, if that is
/// what the bracketed group holds.
fn attr_rename(group: &Group) -> Option<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(inner)] if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(k), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if k.to_string() == "rename" && eq.as_char() == '=' =>
                {
                    Some(lit.to_string().trim_matches('"').to_owned())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Parses a `{ … }` field list into `(field ident, json key)` pairs.
fn named_fields(group: &Group) -> Vec<(String, String)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut rename = None;
        while is_punct(toks.get(i), '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                if let Some(r) = attr_rename(g) {
                    rename = Some(r);
                }
            }
            i += 2;
        }
        if is_ident(toks.get(i), "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let fname = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // Skip `: Type` up to the next top-level comma; commas nested in
        // generic arguments sit between `<`/`>` puncts at this token level.
        let mut angle = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        let key = rename.unwrap_or_else(|| fname.clone());
        out.push((fname, key));
    }
    out
}

/// Counts the fields of a `( … )` tuple body.
fn tuple_arity(group: &Group) -> usize {
    let mut angle = 0i32;
    let mut arity = 0;
    let mut in_segment = false;
    for tt in group.stream() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if in_segment {
                        arity += 1;
                        in_segment = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        arity += 1;
    }
    arity
}

fn enum_variants(group: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g);
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        while i < toks.len() && !is_punct(toks.get(i), ',') {
            i += 1;
        }
        i += 1;
        out.push(Variant { name, kind });
    }
    out
}

/// Skips outer attributes and visibility, returning the index of the
/// `struct`/`enum` keyword.
fn skip_to_keyword(toks: &[TokenTree]) -> usize {
    let mut i = 0;
    while is_punct(toks.get(i), '#') {
        i += 2;
    }
    if is_ident(toks.get(i), "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_to_keyword(&toks);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return compile_error("derive(Serialize): expected struct or enum"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return compile_error("derive(Serialize): expected a type name"),
    };
    i += 1;
    if is_punct(toks.get(i), '<') {
        return compile_error("the vendored serde derive does not support generic types");
    }

    let body = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let entries: String = named_fields(g)
                    .iter()
                    .map(|(f, key)| {
                        format!(
                            "(\"{key}\".to_owned(), ::serde::Serialize::to_json_value(&self.{f})),"
                        )
                    })
                    .collect();
                format!("::serde::Value::Object(vec![{entries}])")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match tuple_arity(g) {
                    0 => "::serde::Value::Array(vec![])".to_owned(),
                    // Newtype structs serialize transparently, as in serde.
                    1 => "::serde::Serialize::to_json_value(&self.0)".to_owned(),
                    n => {
                        let items: String = (0..n)
                            .map(|k| format!("::serde::Serialize::to_json_value(&self.{k}),"))
                            .collect();
                        format!("::serde::Value::Array(vec![{items}])")
                    }
                }
            }
            _ => "::serde::Value::Null".to_owned(),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let arms: String = enum_variants(g)
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Unit => format!(
                                "Self::{vn} => ::serde::Value::String(\"{vn}\".to_owned()),"
                            ),
                            VariantKind::Named(fields) => {
                                let binds: String =
                                    fields.iter().map(|(f, _)| format!("{f},")).collect();
                                let entries: String = fields
                                    .iter()
                                    .map(|(f, key)| {
                                        format!(
                                            "(\"{key}\".to_owned(), \
                                             ::serde::Serialize::to_json_value({f})),"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "Self::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                     \"{vn}\".to_owned(), \
                                     ::serde::Value::Object(vec![{entries}]))]),"
                                )
                            }
                            VariantKind::Tuple(n) => {
                                let binds: String = (0..*n).map(|k| format!("v{k},")).collect();
                                let inner = if *n == 1 {
                                    "::serde::Serialize::to_json_value(v0)".to_owned()
                                } else {
                                    let items: String = (0..*n)
                                        .map(|k| {
                                            format!("::serde::Serialize::to_json_value(v{k}),")
                                        })
                                        .collect();
                                    format!("::serde::Value::Array(vec![{items}])")
                                };
                                format!(
                                    "Self::{vn}({binds}) => ::serde::Value::Object(vec![(\
                                     \"{vn}\".to_owned(), {inner})]),"
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {arms} }}")
            }
            _ => return compile_error("derive(Serialize): malformed enum body"),
        },
        _ => return compile_error("derive(Serialize): expected struct or enum"),
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_to_keyword(&toks);
    i += 1; // struct/enum keyword
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return compile_error("derive(Deserialize): expected a type name"),
    };
    if is_punct(toks.get(i + 1), '<') {
        return compile_error("the vendored serde derive does not support generic types");
    }
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
