//! A JSON value tree with the accessor/indexing/comparison surface the
//! workspace's tests use. Re-exported by the vendored `serde_json`.

use std::fmt;
use std::ops::Index;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like permissive parsers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array backing, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` when missing or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{}", n)
    }
}

impl Value {
    /// Compact single-line JSON rendering.
    pub fn render_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&number_to_string(*n)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn render_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.render_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render_compact(&mut s);
        f.write_str(&s)
    }
}
