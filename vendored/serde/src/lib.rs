//! Std-only stand-in for the `serde` API surface used by this workspace.
//!
//! [`Serialize`] is simplified to a JSON value-tree builder (the only
//! consumer is the vendored `serde_json`); [`Deserialize`] is a marker trait
//! (nothing in the workspace deserializes into typed data). The derive
//! macros live in the sibling `serde_derive` crate and are re-exported when
//! the `derive` feature is on, exactly like upstream.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as a JSON [`Value`] tree.
pub trait Serialize {
    /// Builds the JSON value for `self`.
    fn to_json_value(&self) -> Value;
}

/// Marker for types the derive macro tags as deserializable. The offline
/// stand-in never constructs typed data from JSON, so there are no methods.
pub trait Deserialize<'de>: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<'de, T: ?Sized> Deserialize<'de> for std::sync::Arc<T> {}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_owned(), self.start.to_json_value()),
            ("end".to_owned(), self.end.to_json_value()),
        ])
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
