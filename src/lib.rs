//! # `leaky-dnn`
//!
//! A from-scratch Rust reproduction of **Leaky DNN: Stealing Deep-learning
//! Model Secret with GPU Context-switching Side-channel** (Wei, Zhang, Zhou,
//! Li, Al Faruque — DSN 2020).
//!
//! The paper shows that when an adversary and a victim share a GPU with MPS
//! disabled, the time-sliced scheduler's context-switching penalties leak the
//! victim DNN's structural secret — its layer sequence and hyper-parameters —
//! to a spy process reading CUPTI performance counters around its own probe
//! kernels. The MoSConS attack recovers structures such as VGG16's with a
//! pipeline of learned models (a GBDT iteration splitter, LSTM op
//! classifiers, LSTM voting, hyper-parameter heads) plus DNN-syntax
//! correction.
//!
//! This workspace rebuilds every layer of that system in Rust:
//!
//! | crate | role |
//! |---|---|
//! | [`gpu_sim`] | discrete-event GPU: SMs, contexts, time-sliced + MPS schedulers, L2 occupancy/eviction, DRAM sub-partitions, performance counters |
//! | [`cupti_sim`] | CUPTI events/groups (Table IV), sampling sessions, driver-version gating + the §II-D downgrade bypass |
//! | [`dnn_sim`] | TensorFlow-style substrate: the Table V/IX model zoo, training-step op planner, op→kernel lowering, timeline profiler |
//! | [`ml`] | from-scratch LSTM (BPTT), GBDT, losses, optimizers, metrics |
//! | [`moscons`] | the attack: spy kernels, slow-down, Mgap/Mlong/Mop/Mhp, voting, syntax correction, end-to-end orchestration |
//!
//! # Quickstart
//!
//! ```no_run
//! use leaky_dnn::prelude::*;
//!
//! // The adversary profiles her own models on the shared GPU...
//! let input = InputSpec::Image { height: 64, width: 64, channels: 3 };
//! let profiled: Vec<TrainingSession> = random_profiling_models(6, input, 7)
//!     .into_iter()
//!     .map(|m| TrainingSession::new(m, TrainingConfig::new(16, 6)))
//!     .collect();
//! let moscons = Moscons::profile(&profiled, AttackConfig::default());
//!
//! // ...then extracts the victim's structure from counter samples alone.
//! let victim = TrainingSession::new(zoo::vgg16().with_input(input), TrainingConfig::new(16, 6));
//! let (extraction, _) = moscons.attack(&victim, 99);
//! println!("recovered structure: {}", extraction.structure);
//! ```

pub use cupti_sim;
pub use dnn_sim;
pub use gpu_sim;
pub use ml;
pub use moscons;

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use cupti_sim::{table_iv_groups, CuptiSession, DriverVersion, VmInstance};
    pub use dnn_sim::{
        plan_iteration, zoo, Activation, InputSpec, Layer, Model, OpClass, Optimizer,
        TrainingConfig, TrainingSession,
    };
    pub use gpu_sim::{Gpu, GpuConfig, KernelDesc, KernelFootprint, SchedulerMode};
    pub use moscons::{
        attack::{AttackConfig, Extraction, Moscons},
        random_profiling_models, score_structure, CollectionConfig, GapConfig, HpKind,
        LabeledTrace, SlowdownConfig, SpyKernelKind,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        let cfg = GpuConfig::gtx_1080_ti();
        assert_eq!(cfg.num_sms, 28);
        let m = zoo::vgg16();
        assert_eq!(m.layers.len(), 21);
        let _ = AttackConfig::default();
    }
}
